//! Versioned binary snapshots of [`CompactCsr`] / [`WeightedCsr`].
//!
//! Text ingestion is parse-bound (~100 MiB/s through the byte-level
//! reader; see `benches/ingest.rs`), which makes every experiment re-pay
//! the full decode cost of its input. A snapshot stores the CSR arrays
//! **verbatim** behind a checksummed 64-byte header, so loading is a
//! sequential read plus one checksum pass — memory-bandwidth-bound, an
//! order of magnitude faster than parsing — and [`MappedSnapshot`] skips
//! even the copy by `mmap`ing the file and serving [`GraphView`] /
//! [`WeightedView`] straight from the page cache.
//!
//! ## On-disk layout (version 1)
//!
//! All fields and arrays are **native-endian**; the header carries an
//! endianness marker so a foreign-endian file is rejected instead of
//! decoded wrong. Every section is zero-padded to an 8-byte boundary so
//! the mmap path can cast `u64` offsets and `f64` weights in place.
//!
//! ```text
//! byte  0  ┌────────────────────────────────────────────────┐
//!          │ magic  "PGCSNAP\0"                      (8 B)  │
//!          │ version u16 = 1 · endian u16 = 0xFEFF   (4 B)  │
//!          │ offset_width u8 · weight_kind u8               │
//!          │ weight_width u8 · reserved u8           (4 B)  │
//!          │ n u64 · num_arcs u64                   (16 B)  │
//!          │ max_deg u32 · min_deg u32               (8 B)  │
//!          │ payload_checksum u64                    (8 B)  │
//!          │ reserved u64                            (8 B)  │
//!          │ header_checksum u64 (over bytes 0..56)  (8 B)  │
//! byte 64  ├────────────────────────────────────────────────┤
//!          │ offsets  (n+1) × offset_width, pad → 8         │
//!          ├────────────────────────────────────────────────┤
//!          │ neighbors  num_arcs × 4, pad → 8               │
//!          ├────────────────────────────────────────────────┤
//!          │ weights  num_arcs × weight_width (absent if 0) │
//!          └────────────────────────────────────────────────┘
//! ```
//!
//! `weight_kind` is [`EdgeWeight::SNAPSHOT_KIND`] (0 = unit, 1 = `u32`,
//! 2 = `f32`, 3 = `f64`). An unweighted load accepts any kind (it skips
//! the weights section); a weighted load of a different non-unit kind is
//! `InvalidData`. Both checksums are FNV-1a over 8-byte words, so a
//! truncated, bit-flipped, or foreign file fails loudly — never a
//! silently wrong graph.
//!
//! The text readers ([`crate::io`]) sniff the magic, so a `.pgcs` file
//! can be handed to any `read_*_path` entry point and transparently
//! takes the fast path.
//!
//! ## On-disk layout (version 2, compressed neighbors)
//!
//! Version 2 snapshots ([`write_compressed_snapshot`]) replace the raw
//! neighbor array with the delta-varint **encoded arena** of a
//! [`CompressedCsr`], typically ≥2× smaller on disk. The header is the
//! same 64 bytes: byte 15 (reserved in v1) becomes a flags byte
//! ([`FLAG_COMPRESSED`], [`FLAG_WIDE_BYTE_OFFSETS`]) and bytes 48..56
//! (reserved in v1) carry the arena length. Sections become:
//!
//! ```text
//! header (64 B, version = 2)
//! offsets       (n+1) × offset_width, pad → 8
//! byte_offsets  (n+1) × (4 or 8),     pad → 8
//! arena         encoded_len bytes,    pad → 8
//! weights       num_arcs × weight_width (absent if 0)
//! ```
//!
//! Both loaders sniff the version: [`load_snapshot`] decodes a v2 file
//! into a [`CompactCsr`] transparently (so every `read_*_path` entry
//! point accepts either version), while [`load_compressed_snapshot`]
//! serves the arena **zero-copy** from the `mmap` — only the two offset
//! arrays and the weights are copied out. Version 1 files are written
//! and read byte-identically to before.

use crate::compact::{CompactCsr, Offsets};
use crate::compressed::{Arena, CompressedCsr};
#[cfg(debug_assertions)]
use crate::csr::validate_csr_arrays;
use crate::csr::validate_csr_shape;
use crate::view::{prefetch_read, GraphMemory, GraphView, WeightedView};
use crate::weight::EdgeWeight;
use crate::weighted::{SliceWeightedNeighbors, WeightedCsr};
use std::fs::File;
use std::io::{Read, Write};
use std::marker::PhantomData;
use std::path::Path;

/// The 8-byte magic every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PGCSNAP\0";

/// Current format version for raw-array snapshots.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Format version for compressed-neighbor snapshots.
pub const SNAPSHOT_VERSION_COMPRESSED: u16 = 2;

/// Header flag (byte 15, bit 0): the neighbors section is a delta-varint
/// encoded arena preceded by a byte-offsets section.
pub const FLAG_COMPRESSED: u8 = 1;

/// Header flag (byte 15, bit 1): the byte-offsets section uses 8-byte
/// entries (arena ≥ 4 GiB) instead of 4-byte.
pub const FLAG_WIDE_BYTE_OFFSETS: u8 = 2;

const KNOWN_FLAGS: u8 = FLAG_COMPRESSED | FLAG_WIDE_BYTE_OFFSETS;

/// Conventional file extension (`graph.pgcs`); nothing depends on it —
/// loaders sniff the magic, not the name.
pub const SNAPSHOT_EXT: &str = "pgcs";

const HEADER_LEN: usize = 64;
const ENDIAN_MARK: u16 = 0xFEFF;

/// True if `prefix` begins with the snapshot magic (give it the first 8+
/// bytes of a file).
pub fn is_snapshot(prefix: &[u8]) -> bool {
    prefix.len() >= SNAPSHOT_MAGIC.len() && prefix[..SNAPSHOT_MAGIC.len()] == SNAPSHOT_MAGIC
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------
// Checksum: FNV-1a over 8-byte words
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Fold `bytes` into `h` one native-endian word at a time; a partial
/// tail word is zero-extended — exactly the zero padding the writer
/// emits, so hashing the unpadded arrays equals hashing the padded file
/// sections.
fn hash_section(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = mix(h, u64::from_ne_bytes(c.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix(h, u64::from_ne_bytes(tail));
    }
    h
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Header {
    offset_width: u8,
    weight_kind: u8,
    weight_width: u8,
    /// v2 flag bits (byte 15); 0 in every v1 header.
    flags: u8,
    n: u64,
    num_arcs: u64,
    max_deg: u32,
    min_deg: u32,
    payload_checksum: u64,
    /// Encoded arena length in bytes (v2 only); 0 in every v1 header.
    encoded_len: u64,
}

impl Header {
    #[inline]
    fn compressed(&self) -> bool {
        self.flags & FLAG_COMPRESSED != 0
    }

    /// Byte-offset entry width (meaningful only when compressed).
    #[inline]
    fn byte_offset_width(&self) -> usize {
        if self.flags & FLAG_WIDE_BYTE_OFFSETS != 0 {
            8
        } else {
            4
        }
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let version = if self.compressed() {
            SNAPSHOT_VERSION_COMPRESSED
        } else {
            SNAPSHOT_VERSION
        };
        let mut h = [0u8; HEADER_LEN];
        h[0..8].copy_from_slice(&SNAPSHOT_MAGIC);
        h[8..10].copy_from_slice(&version.to_ne_bytes());
        h[10..12].copy_from_slice(&ENDIAN_MARK.to_ne_bytes());
        h[12] = self.offset_width;
        h[13] = self.weight_kind;
        h[14] = self.weight_width;
        h[15] = self.flags;
        h[16..24].copy_from_slice(&self.n.to_ne_bytes());
        h[24..32].copy_from_slice(&self.num_arcs.to_ne_bytes());
        h[32..36].copy_from_slice(&self.max_deg.to_ne_bytes());
        h[36..40].copy_from_slice(&self.min_deg.to_ne_bytes());
        h[40..48].copy_from_slice(&self.payload_checksum.to_ne_bytes());
        h[48..56].copy_from_slice(&self.encoded_len.to_ne_bytes());
        let ck = hash_section(FNV_OFFSET, &h[..56]);
        h[56..64].copy_from_slice(&ck.to_ne_bytes());
        h
    }

    fn decode(bytes: &[u8]) -> std::io::Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(bad(format!(
                "snapshot truncated: {} bytes, header needs {HEADER_LEN}",
                bytes.len()
            )));
        }
        if !is_snapshot(bytes) {
            return Err(bad("not a snapshot: bad magic".into()));
        }
        let u16_at = |i: usize| u16::from_ne_bytes(bytes[i..i + 2].try_into().unwrap());
        let u32_at = |i: usize| u32::from_ne_bytes(bytes[i..i + 4].try_into().unwrap());
        let u64_at = |i: usize| u64::from_ne_bytes(bytes[i..i + 8].try_into().unwrap());
        let stored = u64_at(56);
        let computed = hash_section(FNV_OFFSET, &bytes[..56]);
        if stored != computed {
            return Err(bad(format!(
                "snapshot header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let version = u16_at(8);
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_COMPRESSED {
            return Err(bad(format!(
                "unsupported snapshot version {version} (this build reads \
                 {SNAPSHOT_VERSION} and {SNAPSHOT_VERSION_COMPRESSED})"
            )));
        }
        if u16_at(10) != ENDIAN_MARK {
            return Err(bad(
                "snapshot endianness mismatch: written on a foreign-endian machine".into(),
            ));
        }
        let h = Self {
            offset_width: bytes[12],
            weight_kind: bytes[13],
            weight_width: bytes[14],
            flags: bytes[15],
            n: u64_at(16),
            num_arcs: u64_at(24),
            max_deg: u32_at(32),
            min_deg: u32_at(36),
            payload_checksum: u64_at(40),
            encoded_len: u64_at(48),
        };
        if version == SNAPSHOT_VERSION && (h.flags != 0 || h.encoded_len != 0) {
            return Err(bad(
                "v1 snapshot with nonzero reserved bytes (flags / encoded length)".into(),
            ));
        }
        if version == SNAPSHOT_VERSION_COMPRESSED {
            if h.flags & !KNOWN_FLAGS != 0 {
                return Err(bad(format!(
                    "v2 snapshot carries unknown flags {:#04x}",
                    h.flags
                )));
            }
            if !h.compressed() {
                return Err(bad(
                    "v2 snapshot without the compressed-neighbors flag".into()
                ));
            }
        }
        if !matches!(h.offset_width, 4 | 8) {
            return Err(bad(format!("bad snapshot offset width {}", h.offset_width)));
        }
        let expect_width = match h.weight_kind {
            0 => 0u8,
            1 | 2 => 4,
            3 => 8,
            k => return Err(bad(format!("unknown snapshot weight kind {k}"))),
        };
        if h.weight_width != expect_width {
            return Err(bad(format!(
                "snapshot weight width {} inconsistent with kind {}",
                h.weight_width, h.weight_kind
            )));
        }
        Ok(h)
    }

    /// Byte ranges of the (padded) sections and the expected file
    /// length. The byte-offsets section is zero-length in v1 layouts;
    /// in v2 layouts the `nbr` section holds the encoded arena instead
    /// of a raw `u32` array.
    fn layout(&self) -> std::io::Result<SectionLayout> {
        let n =
            usize::try_from(self.n).map_err(|_| bad("snapshot n exceeds address space".into()))?;
        let arcs = usize::try_from(self.num_arcs)
            .map_err(|_| bad("snapshot num_arcs exceeds address space".into()))?;
        let pad8 = |x: usize| x.div_ceil(8) * 8;
        let off_len = (n + 1)
            .checked_mul(self.offset_width as usize)
            .ok_or_else(|| bad("snapshot offsets section overflows".into()))?;
        let bo_len = if self.compressed() {
            (n + 1)
                .checked_mul(self.byte_offset_width())
                .ok_or_else(|| bad("snapshot byte-offsets section overflows".into()))?
        } else {
            0
        };
        let nbr_len = if self.compressed() {
            usize::try_from(self.encoded_len)
                .map_err(|_| bad("snapshot arena exceeds address space".into()))?
        } else {
            arcs.checked_mul(4)
                .ok_or_else(|| bad("snapshot neighbors section overflows".into()))?
        };
        let w_len = arcs
            .checked_mul(self.weight_width as usize)
            .ok_or_else(|| bad("snapshot weights section overflows".into()))?;
        let off_start = HEADER_LEN;
        let bo_start = off_start + pad8(off_len);
        let nbr_start = bo_start + pad8(bo_len);
        let w_start = nbr_start + pad8(nbr_len);
        Ok(SectionLayout {
            off_start,
            off_len,
            bo_start,
            bo_len,
            nbr_start,
            nbr_len,
            w_start,
            w_len,
            total: w_start + pad8(w_len),
        })
    }
}

struct SectionLayout {
    off_start: usize,
    off_len: usize,
    bo_start: usize,
    bo_len: usize,
    nbr_start: usize,
    nbr_len: usize,
    w_start: usize,
    w_len: usize,
    total: usize,
}

impl SectionLayout {
    /// Padded section slices of `bytes` (whose length is `total`), in
    /// file order: offsets, byte-offsets (empty in v1), neighbors-or-
    /// arena, weights.
    fn sections<'a>(&self, bytes: &'a [u8]) -> [&'a [u8]; 4] {
        [
            &bytes[self.off_start..self.bo_start],
            &bytes[self.bo_start..self.nbr_start],
            &bytes[self.nbr_start..self.w_start],
            &bytes[self.w_start..self.total],
        ]
    }
}

// ---------------------------------------------------------------------
// Byte <-> typed-array helpers (plain-old-data only)
// ---------------------------------------------------------------------

/// Raw bytes of a POD slice (`u32`/`usize`/`f32`/`f64`; `()` is empty).
fn as_bytes<T: Copy>(v: &[T]) -> &[u8] {
    // SAFETY: T is plain-old-data with no padding; reading its object
    // representation is defined.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

/// Copy `count` `T`s out of `bytes` (alignment-free byte copy).
fn vec_from_bytes<T: Copy + Default>(bytes: &[u8], count: usize) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    debug_assert!(bytes.len() >= count * size);
    let mut v = vec![T::default(); count];
    // SAFETY: every bit pattern is a valid u32/usize/f32/f64, and the
    // source range is in bounds by the layout checks.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), v.as_mut_ptr() as *mut u8, count * size);
    }
    v
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_parts<Wr: Write>(
    offsets: &Offsets,
    neighbors: &[u32],
    weight_kind: u8,
    weight_bytes: &[u8],
    max_deg: u32,
    min_deg: u32,
    w: &mut Wr,
) -> std::io::Result<u64> {
    let wide_tmp: Vec<u64>;
    let (offset_width, off_bytes): (u8, &[u8]) = match offsets {
        Offsets::Small(v) => (4, as_bytes(v)),
        Offsets::Wide(v) => {
            if std::mem::size_of::<usize>() == 8 {
                (8, as_bytes(v))
            } else {
                wide_tmp = v.iter().map(|&x| x as u64).collect();
                (8, as_bytes(&wide_tmp))
            }
        }
    };
    let nbr_bytes = as_bytes(neighbors);
    let n = offsets.len() as u64 - 1;
    let weight_width = if neighbors.is_empty() {
        // kind still recorded; width follows the kind table
        match weight_kind {
            0 => 0,
            1 | 2 => 4,
            _ => 8,
        }
    } else {
        (weight_bytes.len() / neighbors.len()) as u8
    };
    let mut payload = FNV_OFFSET;
    payload = hash_section(payload, off_bytes);
    payload = hash_section(payload, nbr_bytes);
    payload = hash_section(payload, weight_bytes);
    let header = Header {
        offset_width,
        weight_kind,
        weight_width,
        flags: 0,
        n,
        num_arcs: neighbors.len() as u64,
        max_deg,
        min_deg,
        payload_checksum: payload,
        encoded_len: 0,
    };
    w.write_all(&header.encode())?;
    let mut written = HEADER_LEN as u64;
    const PAD: [u8; 8] = [0; 8];
    for section in [off_bytes, nbr_bytes, weight_bytes] {
        w.write_all(section)?;
        let pad = (8 - section.len() % 8) % 8;
        w.write_all(&PAD[..pad])?;
        written += (section.len() + pad) as u64;
    }
    Ok(written)
}

/// Serialize a [`CompressedCsr`]'s parts as a version-2 snapshot.
#[allow(clippy::too_many_arguments)]
fn write_compressed_parts<Wr: Write>(
    offsets: &Offsets,
    byte_offsets: &Offsets,
    arena: &[u8],
    weight_kind: u8,
    weight_bytes: &[u8],
    num_arcs: usize,
    max_deg: u32,
    min_deg: u32,
    w: &mut Wr,
) -> std::io::Result<u64> {
    let off_tmp: Vec<u64>;
    let (offset_width, off_bytes): (u8, &[u8]) = match offsets {
        Offsets::Small(v) => (4, as_bytes(v)),
        Offsets::Wide(v) => {
            if std::mem::size_of::<usize>() == 8 {
                (8, as_bytes(v))
            } else {
                off_tmp = v.iter().map(|&x| x as u64).collect();
                (8, as_bytes(&off_tmp))
            }
        }
    };
    let bo_tmp: Vec<u64>;
    let (mut flags, bo_bytes): (u8, &[u8]) = match byte_offsets {
        Offsets::Small(v) => (FLAG_COMPRESSED, as_bytes(v)),
        Offsets::Wide(v) => {
            if std::mem::size_of::<usize>() == 8 {
                (FLAG_COMPRESSED | FLAG_WIDE_BYTE_OFFSETS, as_bytes(v))
            } else {
                bo_tmp = v.iter().map(|&x| x as u64).collect();
                (FLAG_COMPRESSED | FLAG_WIDE_BYTE_OFFSETS, as_bytes(&bo_tmp))
            }
        }
    };
    flags &= KNOWN_FLAGS;
    let weight_width = weight_bytes.len().checked_div(num_arcs).map_or(
        match weight_kind {
            0 => 0,
            1 | 2 => 4,
            _ => 8,
        },
        |w| w as u8,
    );
    let mut payload = FNV_OFFSET;
    for section in [off_bytes, bo_bytes, arena, weight_bytes] {
        payload = hash_section(payload, section);
    }
    let header = Header {
        offset_width,
        weight_kind,
        weight_width,
        flags,
        n: offsets.len() as u64 - 1,
        num_arcs: num_arcs as u64,
        max_deg,
        min_deg,
        payload_checksum: payload,
        encoded_len: arena.len() as u64,
    };
    w.write_all(&header.encode())?;
    let mut written = HEADER_LEN as u64;
    const PAD: [u8; 8] = [0; 8];
    for section in [off_bytes, bo_bytes, arena, weight_bytes] {
        w.write_all(section)?;
        let pad = (8 - section.len() % 8) % 8;
        w.write_all(&PAD[..pad])?;
        written += (section.len() + pad) as u64;
    }
    Ok(written)
}

/// Serialize an unweighted graph to `w`. Returns the bytes written.
pub fn write_snapshot_to<Wr: Write>(g: &CompactCsr, w: &mut Wr) -> std::io::Result<u64> {
    write_parts(
        g.raw_offsets(),
        g.raw_neighbors(),
        0,
        &[],
        g.max_degree(),
        g.min_degree(),
        w,
    )
}

/// Serialize an unweighted graph to a file (buffered). Returns the bytes
/// written.
pub fn write_snapshot(g: &CompactCsr, path: &Path) -> std::io::Result<u64> {
    let mut w = std::io::BufWriter::new(File::create(path)?);
    let bytes = write_snapshot_to(g, &mut w)?;
    w.flush()?;
    Ok(bytes)
}

/// Serialize a weighted graph to `w`. Returns the bytes written. With the
/// unit payload this writes exactly an unweighted snapshot.
pub fn write_weighted_snapshot_to<W: EdgeWeight, Wr: Write>(
    g: &WeightedCsr<W>,
    w: &mut Wr,
) -> std::io::Result<u64> {
    let s = g.structure();
    write_parts(
        s.raw_offsets(),
        s.raw_neighbors(),
        W::SNAPSHOT_KIND,
        as_bytes(g.raw_weights()),
        s.max_degree(),
        s.min_degree(),
        w,
    )
}

/// Serialize a weighted graph to a file (buffered). Returns the bytes
/// written.
pub fn write_weighted_snapshot<W: EdgeWeight>(
    g: &WeightedCsr<W>,
    path: &Path,
) -> std::io::Result<u64> {
    let mut w = std::io::BufWriter::new(File::create(path)?);
    let bytes = write_weighted_snapshot_to(g, &mut w)?;
    w.flush()?;
    Ok(bytes)
}

/// Serialize an already-compressed graph to `w` as a version-2 snapshot
/// (the arena is written verbatim — no re-encode). Returns the bytes
/// written.
pub fn write_compressed_snapshot_to<W: EdgeWeight, Wr: Write>(
    g: &CompressedCsr<W>,
    w: &mut Wr,
) -> std::io::Result<u64> {
    write_compressed_parts(
        g.raw_offsets(),
        g.raw_byte_offsets(),
        g.arena_bytes(),
        W::SNAPSHOT_KIND,
        as_bytes(g.raw_weights()),
        g.num_arcs(),
        GraphView::max_degree(g),
        GraphView::min_degree(g),
        w,
    )
}

/// Serialize an already-compressed graph to a file (buffered, version 2).
/// Returns the bytes written.
pub fn write_compressed_snapshot<W: EdgeWeight>(
    g: &CompressedCsr<W>,
    path: &Path,
) -> std::io::Result<u64> {
    let mut w = std::io::BufWriter::new(File::create(path)?);
    let bytes = write_compressed_snapshot_to(g, &mut w)?;
    w.flush()?;
    Ok(bytes)
}

/// Encode a raw-array graph and write it as a version-2 compressed
/// snapshot (the `pgc snapshot --compress` path). Returns the bytes
/// written.
pub fn write_snapshot_compressed(g: &CompactCsr, path: &Path) -> std::io::Result<u64> {
    write_compressed_snapshot(&CompressedCsr::from_compact(g), path)
}

// ---------------------------------------------------------------------
// Loading (buffered, fully verified)
// ---------------------------------------------------------------------

/// Decode the header, check both checksums and the exact file length,
/// and hand back `(header, layout)`.
fn verify(bytes: &[u8]) -> std::io::Result<(Header, SectionLayout)> {
    let header = Header::decode(bytes)?;
    let layout = header.layout()?;
    if bytes.len() != layout.total {
        return Err(bad(format!(
            "snapshot length {} does not match header ({} expected): truncated or trailing bytes",
            bytes.len(),
            layout.total
        )));
    }
    let mut payload = FNV_OFFSET;
    for section in layout.sections(bytes) {
        payload = hash_section(payload, section);
    }
    if payload != header.payload_checksum {
        return Err(bad(format!(
            "snapshot payload checksum mismatch: stored {:#018x}, computed {payload:#018x} \
             (corrupt or bit-flipped file)",
            header.payload_checksum
        )));
    }
    Ok((header, layout))
}

/// Copy the v2 byte-offsets section out into plain `usize`s.
fn read_byte_offsets(
    bytes: &[u8],
    header: &Header,
    layout: &SectionLayout,
) -> std::io::Result<Vec<usize>> {
    let n = header.n as usize;
    let bo_bytes = &bytes[layout.bo_start..layout.bo_start + layout.bo_len];
    let bo: Vec<usize> = if header.byte_offset_width() == 4 {
        vec_from_bytes::<u32>(bo_bytes, n + 1)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    } else {
        let wide: Vec<u64> = vec_from_bytes(bo_bytes, n + 1);
        let mut out = Vec::with_capacity(n + 1);
        for x in wide {
            out.push(usize::try_from(x).map_err(|_| {
                bad("wide snapshot byte offset exceeds this platform's usize".into())
            })?);
        }
        out
    };
    // Monotonicity + arena bound, checked before any decode slices it.
    if bo.first() != Some(&0)
        || bo.windows(2).any(|w| w[0] > w[1])
        || bo.last() != Some(&layout.nbr_len)
    {
        return Err(bad(
            "snapshot byte offsets are not monotone within the arena".into(),
        ));
    }
    Ok(bo)
}

/// Decode a v2 arena into a raw neighbor array (parallel, each vertex
/// into its disjoint output range). `get`/`bo` must already be verified
/// monotone and in bounds. Each run's block structure is strictly
/// validated against its declared degree before decoding, so a
/// corrupt-but-checksum-valid file (truncated run, lying `dlen`) errors
/// instead of decoding garbage or panicking.
fn decode_arena(
    n: usize,
    arcs: usize,
    get: &(impl Fn(usize) -> usize + Sync),
    bo: &[usize],
    arena: &[u8],
) -> std::io::Result<Vec<u32>> {
    use rayon::prelude::*;
    if (0..n).any(|i| get(i) > get(i + 1)) || get(n) != arcs {
        return Err(bad("snapshot offsets are not monotone".into()));
    }
    let mut neighbors = vec![0u32; arcs];
    let ptr = crate::compressed::SharedMut(neighbors.as_mut_ptr());
    let ok = (0..n).into_par_iter().all(|v| {
        let (s, e) = (get(v), get(v + 1));
        let run = &arena[bo[v]..bo[v + 1]];
        if !pgc_primitives::varint::validate_run(run, e - s) {
            return false;
        }
        let mut dec = pgc_primitives::varint::Decoder::new(run, e - s);
        // SAFETY: per-vertex arc ranges are disjoint (monotone offsets).
        let out = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        dec.decode_into_slice(out);
        true
    });
    if !ok {
        return Err(bad(
            "compressed snapshot holds a malformed varint run (length or block \
             structure disagrees with the declared degree)"
                .into(),
        ));
    }
    Ok(neighbors)
}

/// Copy the offsets section out into an [`Offsets`] array.
fn read_offsets(bytes: &[u8], header: &Header, layout: &SectionLayout) -> std::io::Result<Offsets> {
    let n = header.n as usize;
    let off_bytes = &bytes[layout.off_start..layout.off_start + layout.off_len];
    if header.offset_width == 4 {
        Ok(Offsets::Small(vec_from_bytes::<u32>(off_bytes, n + 1)))
    } else {
        let wide: Vec<u64> = vec_from_bytes(off_bytes, n + 1);
        let mut out = Vec::with_capacity(n + 1);
        for x in wide {
            out.push(
                usize::try_from(x).map_err(|_| {
                    bad("wide snapshot offset exceeds this platform's usize".into())
                })?,
            );
        }
        Ok(Offsets::Wide(out))
    }
}

fn materialize(
    bytes: &[u8],
    header: &Header,
    layout: &SectionLayout,
) -> std::io::Result<CompactCsr> {
    let n = header.n as usize;
    let arcs = header.num_arcs as usize;
    let offsets = read_offsets(bytes, header, layout)?;
    let get = |i: usize| match &offsets {
        Offsets::Small(o) => o[i] as usize,
        Offsets::Wide(o) => o[i],
    };
    let neighbors: Vec<u32> = if header.compressed() {
        let bo = read_byte_offsets(bytes, header, layout)?;
        let arena = &bytes[layout.nbr_start..layout.nbr_start + layout.nbr_len];
        decode_arena(n, arcs, &get, &bo, arena)?
    } else {
        vec_from_bytes(
            &bytes[layout.nbr_start..layout.nbr_start + layout.nbr_len],
            arcs,
        )
    };
    // Always: the O(n + m) shape sweep (monotone offsets, sorted in-range
    // loop-free adjacencies). Debug builds add the O(m log Δ) symmetry
    // cross-check; in release the payload checksum vouches for the writer,
    // which only serializes already-validated graphs.
    validate_csr_shape(n + 1, get, &neighbors)
        .map_err(|e| bad(format!("snapshot holds an invalid CSR: {e}")))?;
    #[cfg(debug_assertions)]
    validate_csr_arrays(n + 1, get, &neighbors)
        .map_err(|e| bad(format!("snapshot holds an invalid CSR: {e}")))?;
    let g = CompactCsr::from_offsets(offsets, neighbors);
    if g.max_degree() != header.max_deg || g.min_degree() != header.min_deg {
        return Err(bad(format!(
            "snapshot degree extremes (Δ={}, δ={}) disagree with arrays (Δ={}, δ={})",
            header.max_deg,
            header.min_deg,
            g.max_degree(),
            g.min_degree()
        )));
    }
    Ok(g)
}

/// Load an unweighted graph from in-memory snapshot bytes, verifying
/// both checksums and all CSR invariants. Weighted snapshots load their
/// structure (the weights section is skipped).
pub fn load_snapshot_bytes(bytes: &[u8]) -> std::io::Result<CompactCsr> {
    let (header, layout) = verify(bytes)?;
    materialize(bytes, &header, &layout)
}

/// Load a weighted graph from in-memory snapshot bytes. The payload type
/// must match the stored kind ([`EdgeWeight::SNAPSHOT_KIND`]); the unit
/// payload accepts any snapshot and carries no weight bytes.
pub fn load_weighted_snapshot_bytes<W: EdgeWeight>(
    bytes: &[u8],
) -> std::io::Result<WeightedCsr<W>> {
    let (header, layout) = verify(bytes)?;
    if !W::IS_UNIT && header.weight_kind != W::SNAPSHOT_KIND {
        return Err(bad(format!(
            "snapshot weight kind {} does not match the requested payload (kind {})",
            header.weight_kind,
            W::SNAPSHOT_KIND
        )));
    }
    let arcs = header.num_arcs as usize;
    let csr = materialize(bytes, &header, &layout)?;
    let weights: Vec<W> = if W::IS_UNIT {
        vec![W::default(); arcs]
    } else {
        vec_from_bytes(&bytes[layout.w_start..layout.w_start + layout.w_len], arcs)
    };
    Ok(WeightedCsr::from_parts(csr, weights))
}

fn read_file(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::with_capacity(f.metadata().map(|m| m.len() as usize).unwrap_or(0) + 1);
    f.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Load an unweighted graph from a snapshot file (one sequential read,
/// fully verified).
pub fn load_snapshot(path: &Path) -> std::io::Result<CompactCsr> {
    load_snapshot_bytes(&read_file(path)?)
}

/// Load a weighted graph from a snapshot file (one sequential read,
/// fully verified).
pub fn load_weighted_snapshot<W: EdgeWeight>(path: &Path) -> std::io::Result<WeightedCsr<W>> {
    load_weighted_snapshot_bytes::<W>(&read_file(path)?)
}

// ---------------------------------------------------------------------
// Compressed (v2) load — zero-copy arena
// ---------------------------------------------------------------------

/// Release-build validation of a compressed load: every adjacency's
/// encoded run is structurally well-formed
/// ([`pgc_primitives::varint::validate_run`], so truncated or mis-framed
/// runs error instead of panicking or decoding garbage) and decodes to
/// the right count of strictly-ascending, in-range, loop-free ids — the
/// [`crate::csr::validate_csr_shape`] contract, run through the decoder.
/// Debug builds add the symmetry cross-check.
fn validate_compressed<W: EdgeWeight>(g: &CompressedCsr<W>, n: usize) -> std::io::Result<()> {
    use rayon::prelude::*;
    let ok = (0..n as u32).into_par_iter().all(|v| {
        if !g.validate_encoded_run(v) {
            return false;
        }
        let mut dec = g.decoder(v);
        let mut buf = [0u32; pgc_primitives::varint::BLOCK];
        let mut prev: Option<u32> = None;
        let mut count = 0usize;
        loop {
            let c = dec.next_block_into(&mut buf);
            if c == 0 {
                break;
            }
            for &x in &buf[..c] {
                if x as usize >= n || x == v || prev.is_some_and(|p| p >= x) {
                    return false;
                }
                prev = Some(x);
            }
            count += c;
        }
        count == g.degree(v) as usize
    });
    if !ok {
        return Err(bad(
            "compressed snapshot holds an invalid CSR: adjacency fails the shape sweep".into(),
        ));
    }
    #[cfg(debug_assertions)]
    {
        let symmetric = (0..n as u32)
            .into_par_iter()
            .all(|v| g.with_neighbor_slice(v, |ns| ns.iter().all(|&u| g.has_edge(u, v))));
        if !symmetric {
            return Err(bad(
                "compressed snapshot holds an invalid CSR: adjacency is not symmetric".into(),
            ));
        }
    }
    Ok(())
}

fn open_backing(path: &Path) -> std::io::Result<Backing> {
    #[cfg(unix)]
    {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        match mm::Mapping::map(&file, len) {
            Ok(m) => Ok(Backing::Mapped(m)),
            Err(_) => Ok(Backing::Owned(AlignedBytes::read_from(path)?)),
        }
    }
    #[cfg(not(unix))]
    {
        Ok(Backing::Owned(AlignedBytes::read_from(path)?))
    }
}

/// Load a snapshot into a [`CompressedCsr`], verifying checksums and the
/// full CSR contract. A version-2 file is served **zero-copy**: the
/// encoded arena stays in the `mmap` (page-cache-backed) and only the
/// two offset arrays and the weights are copied out. A version-1 file
/// is materialized and losslessly encoded, so either version works.
pub fn load_compressed_snapshot<W: EdgeWeight>(path: &Path) -> std::io::Result<CompressedCsr<W>> {
    let backing = open_backing(path)?;
    let (header, layout) = verify(backing.bytes())?;
    if !W::IS_UNIT && header.weight_kind != W::SNAPSHOT_KIND {
        return Err(bad(format!(
            "snapshot weight kind {} does not match the requested payload (kind {})",
            header.weight_kind,
            W::SNAPSHOT_KIND
        )));
    }
    if !header.compressed() {
        let wg = load_weighted_snapshot_bytes::<W>(backing.bytes())?;
        return Ok(CompressedCsr::from_weighted(&wg));
    }
    let n = header.n as usize;
    let arcs = header.num_arcs as usize;
    let bytes = backing.bytes();
    let offsets = read_offsets(bytes, &header, &layout)?;
    let get = |i: usize| offsets.get(i);
    if (0..n).any(|i| get(i) > get(i + 1)) || get(n) != arcs {
        return Err(bad("snapshot offsets are not monotone".into()));
    }
    let byte_offsets =
        crate::compressed::narrow_offsets(read_byte_offsets(bytes, &header, &layout)?);
    let weights: Vec<W> = if W::IS_UNIT {
        vec![W::default(); arcs]
    } else {
        vec_from_bytes(&bytes[layout.w_start..layout.w_start + layout.w_len], arcs)
    };
    let arena = Arena::Mapped {
        backing: std::sync::Arc::new(backing),
        start: layout.nbr_start,
        len: layout.nbr_len,
    };
    let g = CompressedCsr::from_encoded_parts(offsets, byte_offsets, arena, weights);
    validate_compressed(&g, n)?;
    if GraphView::max_degree(&g) != header.max_deg || GraphView::min_degree(&g) != header.min_deg {
        return Err(bad(format!(
            "snapshot degree extremes (Δ={}, δ={}) disagree with arrays (Δ={}, δ={})",
            header.max_deg,
            header.min_deg,
            GraphView::max_degree(&g),
            GraphView::min_degree(&g)
        )));
    }
    Ok(g)
}

// ---------------------------------------------------------------------
// Inspection (`pgc snapshot --info`)
// ---------------------------------------------------------------------

/// Everything the header and section table say about a snapshot file,
/// gathered by [`inspect_snapshot`] after full checksum verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version (1 = raw arrays, 2 = compressed neighbors).
    pub version: u16,
    /// True when the neighbors live as a delta-varint arena.
    pub compressed: bool,
    /// Bytes per offset entry (4 or 8).
    pub offset_width: u8,
    /// Bytes per byte-offset entry (4 or 8; 0 when uncompressed).
    pub byte_offset_width: u8,
    /// [`EdgeWeight::SNAPSHOT_KIND`] of the stored payload.
    pub weight_kind: u8,
    /// Bytes per stored weight (0 for the unit payload).
    pub weight_width: u8,
    /// Number of vertices.
    pub n: u64,
    /// Number of stored directed arcs (`2m`).
    pub num_arcs: u64,
    /// Maximum degree Δ.
    pub max_deg: u32,
    /// Minimum degree δ.
    pub min_deg: u32,
    /// Unpadded byte length of the offsets section.
    pub offsets_bytes: usize,
    /// Unpadded byte length of the byte-offsets section (0 in v1).
    pub byte_offsets_bytes: usize,
    /// Unpadded byte length of the neighbors section: the raw `u32`
    /// array (v1) or the encoded arena (v2).
    pub neighbor_bytes: usize,
    /// Unpadded byte length of the weights section.
    pub weight_bytes: usize,
    /// Total file length (header + padded sections).
    pub file_bytes: usize,
}

impl SnapshotInfo {
    /// Encoded-to-raw neighbor byte ratio (1.0 for uncompressed files).
    pub fn compression_ratio(&self) -> f64 {
        if !self.compressed || self.num_arcs == 0 {
            return 1.0;
        }
        self.neighbor_bytes as f64 / (4 * self.num_arcs) as f64
    }
}

/// Read and fully verify `path`, returning the header / section-table
/// facts (`pgc snapshot --info`). Verifies both checksums, so a corrupt
/// file is reported rather than described.
pub fn inspect_snapshot(path: &Path) -> std::io::Result<SnapshotInfo> {
    let bytes = read_file(path)?;
    let (header, layout) = verify(&bytes)?;
    Ok(SnapshotInfo {
        version: if header.compressed() {
            SNAPSHOT_VERSION_COMPRESSED
        } else {
            SNAPSHOT_VERSION
        },
        compressed: header.compressed(),
        offset_width: header.offset_width,
        byte_offset_width: if header.compressed() {
            header.byte_offset_width() as u8
        } else {
            0
        },
        weight_kind: header.weight_kind,
        weight_width: header.weight_width,
        n: header.n,
        num_arcs: header.num_arcs,
        max_deg: header.max_deg,
        min_deg: header.min_deg,
        offsets_bytes: layout.off_len,
        byte_offsets_bytes: layout.bo_len,
        neighbor_bytes: layout.nbr_len,
        weight_bytes: layout.w_len,
        file_bytes: layout.total,
    })
}

// ---------------------------------------------------------------------
// mmap-backed zero-copy load
// ---------------------------------------------------------------------

#[cfg(unix)]
pub(crate) mod mm {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private file mapping (raw `mmap`, unmapped on drop).
    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn map(file: &File, len: usize) -> std::io::Result<Self> {
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we
            // hold open; failure is reported via MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Self {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping covers len bytes for self's lifetime.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: exactly the region returned by mmap.
            unsafe { munmap(self.ptr as *mut core::ffi::c_void, self.len) };
        }
    }
}

/// 8-byte-aligned owned byte buffer — the non-unix (or mmap-failure)
/// fallback backing store, aligned so the in-place casts stay valid.
pub(crate) struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn read_from(path: &Path) -> std::io::Result<Self> {
        let mut f = File::open(path)?;
        let len = f.metadata()?.len() as usize;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec<u64> owns at least `len` writable bytes.
        let buf = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        f.read_exact(buf)?;
        Ok(Self { words, len })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: words owns >= len bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

pub(crate) enum Backing {
    #[cfg(unix)]
    Mapped(mm::Mapping),
    Owned(AlignedBytes),
}

impl Backing {
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Owned(b) => b.bytes(),
        }
    }
}

/// A snapshot served **in place**: the offsets, neighbors, and weights
/// arrays are borrowed straight from an `mmap`ed file (page-cache-backed,
/// zero copy) and exposed through [`GraphView`] / [`WeightedView`], so
/// every algorithm in the workspace runs on it unchanged.
///
/// `open` verifies both checksums and the CSR invariants before handing
/// the view out — one sequential pass over the mapping, after which
/// traversal is as fast as an owned [`CompactCsr`]. On non-unix hosts
/// (or if `mmap` fails) it transparently falls back to an owned aligned
/// buffer with identical semantics.
///
/// The type parameter picks the weight payload; `MappedSnapshot<()>` (the
/// default) reads any snapshot and serves unit weights.
pub struct MappedSnapshot<W: EdgeWeight = ()> {
    backing: Backing,
    small_offsets: bool,
    off_start: usize,
    nbr_start: usize,
    w_start: usize,
    n: usize,
    num_arcs: usize,
    max_deg: u32,
    min_deg: u32,
    _payload: PhantomData<W>,
}

impl<W: EdgeWeight> MappedSnapshot<W> {
    /// Map `path` and verify it end to end (checksums + CSR invariants +
    /// weight-kind match for non-unit `W`).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Self::from_backing(open_backing(path)?)
    }

    fn from_backing(backing: Backing) -> std::io::Result<Self> {
        let (header, layout) = verify(backing.bytes())?;
        if header.compressed() {
            return Err(bad(
                "compressed (v2) snapshot cannot be served as raw in-place arrays; \
                 use load_compressed_snapshot or load_snapshot"
                    .into(),
            ));
        }
        if !W::IS_UNIT && header.weight_kind != W::SNAPSHOT_KIND {
            return Err(bad(format!(
                "snapshot weight kind {} does not match the requested payload (kind {})",
                header.weight_kind,
                W::SNAPSHOT_KIND
            )));
        }
        let s = Self {
            small_offsets: header.offset_width == 4,
            off_start: layout.off_start,
            nbr_start: layout.nbr_start,
            w_start: layout.w_start,
            n: header.n as usize,
            num_arcs: header.num_arcs as usize,
            max_deg: header.max_deg,
            min_deg: header.min_deg,
            _payload: PhantomData,
            backing,
        };
        // Same validation policy as the owned loader: linear shape sweep
        // always, symmetry cross-check in debug builds.
        validate_csr_shape(s.n + 1, |i| s.offset(i), s.neighbor_array())
            .map_err(|e| bad(format!("snapshot holds an invalid CSR: {e}")))?;
        #[cfg(debug_assertions)]
        validate_csr_arrays(s.n + 1, |i| s.offset(i), s.neighbor_array())
            .map_err(|e| bad(format!("snapshot holds an invalid CSR: {e}")))?;
        Ok(s)
    }

    #[inline]
    fn offset(&self, i: usize) -> usize {
        let bytes = self.backing.bytes();
        if self.small_offsets {
            // SAFETY: section bounds checked at open; base is 8-aligned.
            let o = unsafe {
                std::slice::from_raw_parts(
                    bytes.as_ptr().add(self.off_start) as *const u32,
                    self.n + 1,
                )
            };
            o[i] as usize
        } else {
            let o = unsafe {
                std::slice::from_raw_parts(
                    bytes.as_ptr().add(self.off_start) as *const u64,
                    self.n + 1,
                )
            };
            o[i] as usize
        }
    }

    /// The whole neighbor array, borrowed from the mapping.
    #[inline]
    pub fn neighbor_array(&self) -> &[u32] {
        let bytes = self.backing.bytes();
        // SAFETY: section bounds checked at open; 4-aligned by layout.
        unsafe {
            std::slice::from_raw_parts(
                bytes.as_ptr().add(self.nbr_start) as *const u32,
                self.num_arcs,
            )
        }
    }

    fn weight_array(&self) -> &[W] {
        if W::IS_UNIT {
            // A ZST slice needs no storage.
            return unsafe {
                std::slice::from_raw_parts(std::ptr::NonNull::dangling().as_ptr(), self.num_arcs)
            };
        }
        let bytes = self.backing.bytes();
        // SAFETY: kind checked at open, section 8-aligned by layout.
        unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().add(self.w_start) as *const W, self.num_arcs)
        }
    }

    /// Sorted neighbor slice of `v`, borrowed from the mapping.
    #[inline]
    pub fn neighbor_slice(&self, v: u32) -> &[u32] {
        &self.neighbor_array()[self.offset(v as usize)..self.offset(v as usize + 1)]
    }

    /// Weight slice parallel to [`neighbor_slice`](Self::neighbor_slice)
    /// (a dangling-but-valid ZST slice for the unit payload). Used by the
    /// sharded layer to serve spilled shards without re-materializing.
    #[inline]
    pub(crate) fn weight_slice(&self, v: u32) -> &[W] {
        &self.weight_array()[self.offset(v as usize)..self.offset(v as usize + 1)]
    }

    /// Copy into an owned [`CompactCsr`] (e.g. to outlive the file).
    pub fn to_compact(&self) -> CompactCsr {
        let offsets: Vec<usize> = (0..=self.n).map(|i| self.offset(i)).collect();
        CompactCsr::from_raw(offsets, self.neighbor_array().to_vec())
    }
}

impl<W: EdgeWeight> GraphView for MappedSnapshot<W> {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, u32>>;

    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    #[inline]
    fn degree(&self, v: u32) -> u32 {
        (self.offset(v as usize + 1) - self.offset(v as usize)) as u32
    }

    #[inline]
    fn neighbors(&self, v: u32) -> Self::Neighbors<'_> {
        self.neighbor_slice(v).iter().copied()
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.max_deg
    }

    #[inline]
    fn min_degree(&self) -> u32 {
        self.min_deg
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    #[inline]
    fn prefetch_neighbors(&self, v: u32) {
        let r = self.offset(v as usize);
        if r < self.num_arcs {
            prefetch_read(&self.neighbor_array()[r]);
        }
    }

    fn memory_footprint(&self) -> GraphMemory {
        GraphMemory {
            offset_width: if self.small_offsets { 4 } else { 8 },
            offset_count: self.n + 1,
            neighbor_width: 4,
            neighbor_count: self.num_arcs,
            encoded_bytes: 0,
            encoded_mapped_bytes: 0,
            aux_bytes: 0,
            weight_bytes: self.num_arcs * std::mem::size_of::<W>(),
        }
    }
}

impl<W: EdgeWeight> WeightedView for MappedSnapshot<W> {
    type Weight = W;
    type WeightedNeighbors<'a> = SliceWeightedNeighbors<'a, W>;

    #[inline]
    fn weighted_neighbors(&self, v: u32) -> SliceWeightedNeighbors<'_, W> {
        let r = self.offset(v as usize)..self.offset(v as usize + 1);
        SliceWeightedNeighbors::new(&self.neighbor_array()[r.clone()], &self.weight_array()[r])
    }

    fn edge_weight(&self, u: u32, v: u32) -> Option<W> {
        let r = self.offset(u as usize)..self.offset(u as usize + 1);
        let i = self.neighbor_array()[r.clone()].binary_search(&v).ok()?;
        Some(self.weight_array()[r][i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, from_weighted_edges};
    use crate::gen::{generate, GraphSpec};

    fn snap_bytes(g: &CompactCsr) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot_to(g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_unweighted() {
        let g = generate(&GraphSpec::ErdosRenyi { n: 500, m: 2000 }, 7);
        let back = load_snapshot_bytes(&snap_bytes(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_weighted() {
        let g = from_weighted_edges(5, &[(0u32, 1u32, 2.5f64), (1, 2, -4.0), (3, 4, 0.25)]);
        let mut buf = Vec::new();
        write_weighted_snapshot_to(&g, &mut buf).unwrap();
        let back = load_weighted_snapshot_bytes::<f64>(&buf).unwrap();
        assert_eq!(back, g);
        // Structure-only load of a weighted snapshot works too.
        assert_eq!(&load_snapshot_bytes(&buf).unwrap(), g.structure());
    }

    #[test]
    fn weight_kind_mismatch_rejected() {
        let g = from_weighted_edges(3, &[(0u32, 1u32, 2.5f32), (1, 2, 1.0)]);
        let mut buf = Vec::new();
        write_weighted_snapshot_to(&g, &mut buf).unwrap();
        let err = load_weighted_snapshot_bytes::<f64>(&buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("kind"), "{err}");
        // Unit payload accepts anything.
        assert!(load_weighted_snapshot_bytes::<()>(&buf).is_ok());
    }

    #[test]
    fn truncated_and_flipped_rejected() {
        let g = generate(&GraphSpec::ErdosRenyi { n: 200, m: 800 }, 3);
        let buf = snap_bytes(&g);
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN, buf.len() - 1] {
            let err = load_snapshot_bytes(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
        }
        // Flip one bit in every region: magic, header fields, payload.
        for pos in [0usize, 9, 13, 20, 40, 60, HEADER_LEN + 3, buf.len() - 2] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                load_snapshot_bytes(&bad).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = snap_bytes(&g);
        buf.extend_from_slice(&[0u8; 8]);
        assert!(load_snapshot_bytes(&buf).is_err());
    }

    #[test]
    fn magic_sniffing() {
        assert!(is_snapshot(&snap_bytes(&CompactCsr::empty(1))));
        assert!(!is_snapshot(b"p edge 4 3"));
        assert!(!is_snapshot(b"PGC"));
    }

    #[test]
    fn empty_graph_round_trips() {
        for n in [0usize, 1, 17] {
            let g = CompactCsr::empty(n);
            let back = load_snapshot_bytes(&snap_bytes(&g)).unwrap();
            assert_eq!(back, g, "n={n}");
        }
    }

    #[test]
    fn mapped_view_agrees_with_owned() {
        let g = generate(
            &GraphSpec::Rmat {
                scale: 8,
                edge_factor: 8,
            },
            11,
        );
        let dir = std::env::temp_dir().join(format!("pgc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pgcs");
        write_snapshot(&g, &path).unwrap();
        let m = MappedSnapshot::<()>::open(&path).unwrap();
        assert_eq!(m.n(), g.n());
        assert_eq!(m.num_arcs(), g.num_arcs());
        assert_eq!(GraphView::max_degree(&m), g.max_degree());
        assert_eq!(GraphView::min_degree(&m), g.min_degree());
        for v in g.vertices() {
            assert_eq!(m.neighbor_slice(v), g.neighbors(v));
        }
        assert_eq!(m.to_compact(), g);
        assert!(m.has_edge(g.edges().next().unwrap().0, g.edges().next().unwrap().1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_weighted_view() {
        let g = from_weighted_edges(4, &[(0u32, 1u32, 2.5f64), (1, 2, 4.0), (2, 3, -1.0)]);
        let dir = std::env::temp_dir().join(format!("pgc-snapw-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pgcs");
        write_weighted_snapshot(&g, &path).unwrap();
        let m = MappedSnapshot::<f64>::open(&path).unwrap();
        assert_eq!(m.edge_weight(2, 1), Some(4.0));
        assert_eq!(
            m.weighted_neighbors(1).collect::<Vec<_>>(),
            vec![(0, 2.5), (2, 4.0)]
        );
        assert_eq!(m.total_weight(), 5.5);
        assert!(MappedSnapshot::<u32>::open(&path).is_err(), "kind mismatch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_snapshot_round_trips() {
        let g = generate(
            &GraphSpec::Rmat {
                scale: 8,
                edge_factor: 8,
            },
            21,
        );
        let dir = std::env::temp_dir().join(format!("pgc-snapc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pgcs");
        let written = write_snapshot_compressed(&g, &path).unwrap();
        let v1_len = snap_bytes(&g).len() as u64;
        assert!(
            written < v1_len,
            "v2 file ({written} B) should beat v1 ({v1_len} B)"
        );

        // Transparent decode path: the plain loader accepts v2.
        assert_eq!(load_snapshot(&path).unwrap(), g);

        // Zero-copy path: arena served from the mapping.
        let c = load_compressed_snapshot::<()>(&path).unwrap();
        assert_eq!(c.to_compact(), g);
        let fp = GraphView::memory_footprint(&c);
        assert_eq!(fp.encoded_bytes, 0, "mapped arena is page-cache, not heap");
        assert!(c.encoded_bytes() > 0);
        assert_eq!(
            fp.encoded_mapped_bytes,
            c.encoded_bytes(),
            "representation length must stay visible for mapped arenas"
        );
        assert_eq!(fp.encoded_len(), c.encoded_bytes());
        // Traversed representation counts the mapped arena; the heap
        // charge does not (unit payload ⇒ no weight bytes).
        assert_eq!(fp.structural_bytes(), fp.total_bytes() + fp.encoded_len());

        // A raw-array in-place view cannot serve a v2 file.
        assert!(MappedSnapshot::<()>::open(&path).is_err());

        // v1 files feed the compressed loader too (materialize + encode).
        let v1_path = dir.join("g1.pgcs");
        write_snapshot(&g, &v1_path).unwrap();
        let c1 = load_compressed_snapshot::<()>(&v1_path).unwrap();
        assert_eq!(c1.to_compact(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_weighted_snapshot_round_trips() {
        let g = from_weighted_edges(6, &[(0u32, 1u32, 2.5f64), (1, 2, -4.0), (3, 5, 0.25)]);
        let c = CompressedCsr::from_weighted(&g);
        let dir = std::env::temp_dir().join(format!("pgc-snapcw-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pgcs");
        write_compressed_snapshot(&c, &path).unwrap();
        let back = load_compressed_snapshot::<f64>(&path).unwrap();
        assert_eq!(back.to_weighted(), g);
        assert!(
            load_compressed_snapshot::<u32>(&path).is_err(),
            "kind mismatch"
        );
        // Weighted v2 decodes transparently through the weighted loader.
        assert_eq!(load_weighted_snapshot::<f64>(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_truncation_and_flips_rejected() {
        let g = generate(&GraphSpec::ErdosRenyi { n: 200, m: 800 }, 13);
        let c = CompressedCsr::from_compact(&g);
        let mut buf = Vec::new();
        write_compressed_snapshot_to(&c, &mut buf).unwrap();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN, buf.len() - 1] {
            let err = load_snapshot_bytes(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
        }
        for pos in [0usize, 9, 15, 20, 40, 50, 60, HEADER_LEN + 3, buf.len() - 2] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                load_snapshot_bytes(&bad).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
    }

    #[test]
    fn checksum_valid_but_malformed_runs_error_not_panic() {
        // A lying dlen inside the arena with both checksums re-sealed is
        // corrupt-but-checksum-valid: FNV is trivially recomputable, so
        // the loaders cannot lean on it — every load path must surface
        // InvalidData instead of panicking mid-decode in a par_iter.
        let g = generate(&GraphSpec::ErdosRenyi { n: 300, m: 1500 }, 17);
        let c = CompressedCsr::from_compact(&g);
        let mut buf = Vec::new();
        write_compressed_snapshot_to(&c, &mut buf).unwrap();
        let (_, layout) = verify(&buf).unwrap();
        // Overwrite the first block header's dlen so the run overruns
        // its slice, then re-seal payload + header checksums.
        buf[layout.nbr_start + 4..layout.nbr_start + 6].copy_from_slice(&u16::MAX.to_le_bytes());
        let mut payload = FNV_OFFSET;
        for section in layout.sections(&buf) {
            payload = hash_section(payload, section);
        }
        buf[40..48].copy_from_slice(&payload.to_ne_bytes());
        let ck = hash_section(FNV_OFFSET, &buf[..56]);
        buf[56..64].copy_from_slice(&ck.to_ne_bytes());
        // Decode path (materialize → decode_arena).
        let err = load_snapshot_bytes(&buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("malformed varint run"), "{err}");
        // Zero-copy path (load_compressed_snapshot → validate_compressed).
        let dir = std::env::temp_dir().join(format!("pgc-snapbad-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.pgcs");
        std::fs::write(&path, &buf).unwrap();
        let err = load_compressed_snapshot::<()>(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_reserved_bytes_must_be_zero() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = snap_bytes(&g);
        // Set a flag bit in a v1 header and re-seal the header checksum:
        // the version/flags cross-check must still reject it.
        buf[15] = FLAG_COMPRESSED;
        let ck = hash_section(FNV_OFFSET, &buf[..56]);
        buf[56..64].copy_from_slice(&ck.to_ne_bytes());
        let err = load_snapshot_bytes(&buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("reserved"), "{err}");
    }

    #[test]
    fn inspect_reports_both_versions() {
        let g = generate(&GraphSpec::BarabasiAlbert { n: 400, attach: 4 }, 2);
        let dir = std::env::temp_dir().join(format!("pgc-snapi-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("v1.pgcs");
        let p2 = dir.join("v2.pgcs");
        write_snapshot(&g, &p1).unwrap();
        write_snapshot_compressed(&g, &p2).unwrap();
        let i1 = inspect_snapshot(&p1).unwrap();
        let i2 = inspect_snapshot(&p2).unwrap();
        assert_eq!(i1.version, 1);
        assert!(!i1.compressed);
        assert_eq!(i1.neighbor_bytes, 4 * g.num_arcs());
        assert_eq!(i1.byte_offsets_bytes, 0);
        assert_eq!(i1.compression_ratio(), 1.0);
        assert_eq!(i2.version, 2);
        assert!(i2.compressed);
        assert_eq!(i2.n, g.n() as u64);
        assert_eq!(i2.num_arcs, g.num_arcs() as u64);
        assert_eq!(i2.max_deg, g.max_degree());
        assert!(i2.neighbor_bytes < i1.neighbor_bytes);
        assert!(i2.compression_ratio() < 1.0);
        assert!(i2.byte_offsets_bytes > 0);
        assert!(inspect_snapshot(&dir.join("missing.pgcs")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_section_matches_padded_equivalent() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        let padded = {
            let mut p = data.to_vec();
            p.resize(16, 0);
            p
        };
        assert_eq!(
            hash_section(FNV_OFFSET, &data),
            hash_section(FNV_OFFSET, &padded)
        );
    }
}
