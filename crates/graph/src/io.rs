//! Graph I/O.
//!
//! Three interchange formats so users can run the paper's real datasets
//! when they have them:
//!
//! * whitespace-separated **edge lists** (`u v` per line, optional third
//!   weight column, `#` comments) — the SNAP/KONECT distribution format,
//! * **DIMACS `.col`** (`p edge n m` header, `e u v` lines, 1-based) — the
//!   classic coloring-benchmark format,
//! * **Matrix Market** coordinate files — the SuiteSparse format, with
//!   the value column parsed for weighted reads.
//!
//! Every reader is a replayable [`EdgeSource`]: parsing happens inside
//! [`EdgeSource::replay`], so the two-pass streaming builder
//! ([`crate::stream`]) ingests a file with **two sequential scans and no
//! edge buffering**. The [`Reopen`] trait abstracts "give me a fresh
//! reader over the same bytes" — a path reopens the file, a byte slice
//! rewinds for free — so the same parser serves the streaming
//! [`read_edge_list_path`]-style entry points and the buffered
//! [`read_edge_list`]-style `BufRead` compatibility APIs (which slurp the
//! input once, then stream over the in-memory bytes: text is the only
//! buffer, never a decoded arc list).
//!
//! ## The byte-level fast path
//!
//! Text parsing dominates `read_*_path` ingest (each scan must decode
//! every line), so the readers never materialize `String` lines: a single
//! reusable buffer is filled by `read_until(b'\n')` and vertex ids are
//! decoded by a branch-lean ASCII-decimal loop (`parse_u32_ascii`) —
//! no per-line allocation, no UTF-8 validation, no generic
//! `str::parse` machinery on the hot path. Only weight fields (floats
//! are genuinely hard to parse) fall back to `str::parse` via
//! [`EdgeWeight::parse_ascii`]. `benches/ingest.rs` measures the gain
//! against the old `String`-lines parser.

use crate::compact::CompactCsr;
use crate::stream::{build_compact, build_weighted, ChunkFn, EdgeSink, EdgeSource};
use crate::view::{GraphView, WeightedView};
use crate::weight::EdgeWeight;
use crate::weighted::WeightedCsr;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Input that can be opened for reading any number of times, yielding the
/// identical byte stream — what makes a file-backed [`EdgeSource`]
/// replayable.
pub trait Reopen: Sync {
    /// The reader one scan runs over.
    type Reader: BufRead;
    /// Open a fresh reader at the start of the input.
    fn reopen(&self) -> std::io::Result<Self::Reader>;
}

/// A path reopens the underlying file (the streaming case: two
/// sequential scans of the file, zero buffering).
impl Reopen for PathBuf {
    type Reader = BufReader<File>;

    fn reopen(&self) -> std::io::Result<Self::Reader> {
        Ok(BufReader::new(File::open(self)?))
    }
}

/// In-memory bytes replay for free (the compatibility case and tests).
impl<'a> Reopen for &'a [u8] {
    type Reader = &'a [u8];

    fn reopen(&self) -> std::io::Result<Self::Reader> {
        Ok(*self)
    }
}

// ---------------------------------------------------------------------
// Byte-level line/token machinery (the parse fast path)
// ---------------------------------------------------------------------

/// Feed every input line to `f` as a whitespace-trimmed byte slice,
/// through one reusable buffer — no per-line `String`, no UTF-8 check.
fn for_each_line<R: BufRead>(
    mut reader: R,
    mut f: impl FnMut(&[u8]) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(());
        }
        f(buf.trim_ascii())?;
    }
}

/// Split the next whitespace-separated token off the front of `s`.
#[inline]
fn next_token<'a>(s: &mut &'a [u8]) -> Option<&'a [u8]> {
    let mut i = 0;
    while i < s.len() && s[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < s.len() && !s[i].is_ascii_whitespace() {
        i += 1;
    }
    let tok = &s[start..i];
    *s = &s[i..];
    (!tok.is_empty()).then_some(tok)
}

/// Byte-level integer fast path: ASCII decimal → `u32`, rejecting
/// non-digits and overflow. An 11+-digit token cannot fit, so the digit
/// loop runs at most 10 times and accumulates in `u64` without
/// per-iteration overflow checks.
#[inline]
fn parse_u32_ascii(tok: &[u8]) -> Option<u32> {
    if tok.is_empty() || tok.len() > 10 {
        return None;
    }
    let mut x: u64 = 0;
    for &b in tok {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        x = x * 10 + d as u64;
    }
    (x <= u32::MAX as u64).then_some(x as u32)
}

fn lossy(line: &[u8]) -> String {
    String::from_utf8_lossy(line).into_owned()
}

/// Take and decode one vertex-id token; `InvalidData` with the offending
/// line if missing or malformed.
#[inline]
fn parse_id_field(rest: &mut &[u8], what: &str, line: &[u8]) -> std::io::Result<u32> {
    next_token(rest)
        .and_then(parse_u32_ascii)
        .ok_or_else(|| bad(format!("missing or bad {what} in line {:?}", lossy(line))))
}

/// Take and decode one weight token via [`EdgeWeight::parse_ascii`].
fn parse_weight_field<W: EdgeWeight>(rest: &mut &[u8], line: &[u8]) -> std::io::Result<W> {
    let tok = next_token(rest).ok_or_else(|| {
        bad(format!(
            "missing weight column in line {:?} (weighted read of a 2-column input?)",
            lossy(line)
        ))
    })?;
    W::parse_ascii(tok).ok_or_else(|| bad(format!("bad weight in line {:?}", lossy(line))))
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// SNAP-style edge list as a streaming [`EdgeSource`]: one `u v` pair —
/// or `u v w` triple, when read weighted — per line, `#`/`%` comment
/// lines. Vertex ids may be sparse; the builder sizes the graph by the
/// maximum id + 1 (so [`num_vertices`](EdgeSource::num_vertices) reports
/// 0 — unknown until scanned). Unweighted reads ignore any trailing
/// columns; weighted reads require the third column on every line.
pub struct EdgeListSource<R: Reopen> {
    input: R,
}

impl<R: Reopen> EdgeListSource<R> {
    /// Wrap a replayable input.
    pub fn new(input: R) -> Self {
        Self { input }
    }
}

impl<W: EdgeWeight, R: Reopen> EdgeSource<W> for EdgeListSource<R> {
    fn num_vertices(&self) -> usize {
        0
    }

    fn replay(&self, emit: &mut ChunkFn<'_, W>) -> std::io::Result<()> {
        let reader = self.input.reopen()?;
        let mut sink = EdgeSink::new(emit);
        for_each_line(reader, |line| {
            if line.is_empty() || line[0] == b'#' || line[0] == b'%' {
                return Ok(());
            }
            let mut rest = line;
            let u = parse_id_field(&mut rest, "source", line)?;
            let v = parse_id_field(&mut rest, "target", line)?;
            let w = if W::IS_UNIT {
                W::default()
            } else {
                parse_weight_field::<W>(&mut rest, line)?
            };
            sink.push_weighted(u, v, w);
            Ok(())
        })
    }
}

/// DIMACS `.col` as a streaming [`EdgeSource`]: `c` comments, one
/// `p edge <n> <m>` line, `e u v` edges with **1-based** vertex ids.
/// The header is parsed eagerly by [`DimacsSource::new`] (a short partial
/// read), so the declared `n` and edge hint are known before the scans.
pub struct DimacsSource<R: Reopen> {
    input: R,
    n: usize,
    m: usize,
}

impl<R: Reopen> DimacsSource<R> {
    /// Wrap a replayable input, reading ahead to the `p edge` header.
    /// Errors if the header is missing or the problem type unsupported.
    pub fn new(input: R) -> std::io::Result<Self> {
        let mut header = None;
        for line in input.reopen()?.lines() {
            let line = line?;
            if let Some(rest) = line.trim().strip_prefix("p ") {
                let t = line.trim();
                let mut it = rest.split_whitespace();
                let kind = it.next().unwrap_or("");
                if kind != "edge" && kind != "edges" && kind != "col" {
                    return Err(bad(format!("unsupported problem type {kind:?}")));
                }
                let n = parse_field(it.next(), "n", t)? as usize;
                let m = parse_field(it.next(), "m", t)
                    .map(|m| m as usize)
                    .unwrap_or(0);
                header = Some((n, m));
                break;
            }
        }
        let (n, m) = header.ok_or_else(|| bad("missing 'p edge' header".into()))?;
        Ok(Self { input, n, m })
    }

    /// Declared vertex count from the `p edge` header.
    pub fn declared_n(&self) -> usize {
        self.n
    }
}

impl<R: Reopen> EdgeSource for DimacsSource<R> {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        Some(self.m)
    }

    fn replay(&self, emit: &mut ChunkFn<'_>) -> std::io::Result<()> {
        let reader = self.input.reopen()?;
        let mut sink = EdgeSink::new(emit);
        for_each_line(reader, |line| {
            let [b'e', sp, ..] = line else {
                return Ok(());
            };
            if !sp.is_ascii_whitespace() {
                return Ok(());
            }
            let mut rest = &line[1..];
            let u = parse_id_field(&mut rest, "u", line)?;
            let v = parse_id_field(&mut rest, "v", line)?;
            if u == 0 || v == 0 {
                return Err(bad(format!(
                    "DIMACS ids are 1-based, got line {:?}",
                    lossy(line)
                )));
            }
            if u as usize > self.n || v as usize > self.n {
                return Err(bad(format!(
                    "edge ({u},{v}) out of declared range n={}",
                    self.n
                )));
            }
            sink.push(u - 1, v - 1);
            Ok(())
        })
    }
}

/// The value-field kind a Matrix Market header declares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MmField {
    /// `pattern`: entries are `row col`, no value.
    Pattern,
    /// `real` / `double`: entries are `row col value`.
    Real,
    /// `integer`: entries are `row col value` with integral values.
    Integer,
}

/// Matrix Market coordinate file as a streaming [`EdgeSource`]:
/// rows/columns are vertices, entries are edges. The `%%MatrixMarket`
/// header and size line are parsed eagerly by [`MatrixMarketSource::new`],
/// which rejects `complex` files outright (a weight cannot represent the
/// imaginary column faithfully). Entry lines are validated against the
/// declared field kind — a `pattern` file carrying values, or a
/// `real`/`integer` file missing them, is `InvalidData` instead of a
/// silently wrong graph — and weighted reads parse the value column into
/// the edge weight (max on duplicates, like every source).
pub struct MatrixMarketSource<R: Reopen> {
    input: R,
    n: usize,
    nnz: usize,
    field: MmField,
}

impl<R: Reopen> MatrixMarketSource<R> {
    /// Wrap a replayable input, reading ahead to the header and size
    /// line. Errors on missing/dense/non-matrix/`complex` headers.
    pub fn new(input: R) -> std::io::Result<Self> {
        let mut lines = input.reopen()?.lines();
        let header = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    if line.starts_with("%%MatrixMarket") {
                        break line;
                    } else if !line.trim().is_empty() {
                        return Err(bad("missing %%MatrixMarket header".into()));
                    }
                }
                None => return Err(bad("empty Matrix Market file".into())),
            }
        };
        let lower = header.to_ascii_lowercase();
        let mut tokens = lower.split_whitespace().skip(1); // "%%matrixmarket"
        if tokens.next() != Some("matrix") {
            return Err(bad(format!("unsupported Matrix Market header {header:?}")));
        }
        if tokens.next() != Some("coordinate") {
            return Err(bad(format!(
                "unsupported Matrix Market format in {header:?} (only 'coordinate' is sparse)"
            )));
        }
        let field = match tokens.next() {
            Some("pattern") => MmField::Pattern,
            Some("real") | Some("double") => MmField::Real,
            Some("integer") => MmField::Integer,
            Some("complex") => {
                return Err(bad(format!(
                    "complex Matrix Market files are unsupported (header {header:?}): \
                     an edge weight cannot represent the imaginary column"
                )))
            }
            other => {
                return Err(bad(format!(
                    "missing or unknown Matrix Market field {other:?} in header {header:?}"
                )))
            }
        };
        // Size line: first non-comment line after the header.
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let nrows = parse_field(it.next(), "rows", t)? as usize;
            let ncols = parse_field(it.next(), "cols", t)? as usize;
            let nnz = parse_field(it.next(), "nnz", t)? as usize;
            return Ok(Self {
                input,
                n: nrows.max(ncols),
                nnz,
                field,
            });
        }
        Err(bad("missing Matrix Market size line".into()))
    }
}

impl<W: EdgeWeight, R: Reopen> EdgeSource<W> for MatrixMarketSource<R> {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        Some(self.nnz)
    }

    fn replay(&self, emit: &mut ChunkFn<'_, W>) -> std::io::Result<()> {
        if !W::IS_UNIT && self.field == MmField::Pattern {
            return Err(bad(
                "weighted read of a 'pattern' Matrix Market file: it declares no values".into(),
            ));
        }
        let reader = self.input.reopen()?;
        let mut sink = EdgeSink::new(emit);
        let mut past_size_line = false;
        for_each_line(reader, |line| {
            if line.is_empty() || line[0] == b'%' {
                return Ok(());
            }
            if !past_size_line {
                past_size_line = true; // validated by `new`
                return Ok(());
            }
            let mut rest = line;
            let r = parse_id_field(&mut rest, "row", line)?;
            let c = parse_id_field(&mut rest, "col", line)?;
            if r == 0 || c == 0 {
                return Err(bad(format!(
                    "Matrix Market ids are 1-based: {:?}",
                    lossy(line)
                )));
            }
            if r as usize > self.n || c as usize > self.n {
                return Err(bad(format!("entry ({r},{c}) exceeds size {}", self.n)));
            }
            // Enforce the declared field kind: an entry shape that
            // contradicts the header means the header (or file) is wrong,
            // and silently guessing would hand back a wrong graph.
            let w = match self.field {
                MmField::Pattern => {
                    if next_token(&mut rest).is_some() {
                        return Err(bad(format!(
                            "'pattern' Matrix Market entry carries a value: {:?}",
                            lossy(line)
                        )));
                    }
                    W::default()
                }
                MmField::Real | MmField::Integer => {
                    let tok = next_token(&mut rest).ok_or_else(|| {
                        bad(format!(
                            "Matrix Market entry missing its declared value: {:?}",
                            lossy(line)
                        ))
                    })?;
                    if next_token(&mut rest).is_some() {
                        return Err(bad(format!(
                            "Matrix Market entry has extra columns (complex data \
                             under a non-complex header?): {:?}",
                            lossy(line)
                        )));
                    }
                    if W::IS_UNIT {
                        W::default()
                    } else {
                        W::parse_ascii(tok).ok_or_else(|| {
                            bad(format!("bad Matrix Market value in {:?}", lossy(line)))
                        })?
                    }
                }
            };
            sink.push_weighted(r - 1, c - 1, w);
            Ok(())
        })
    }
}

// ---------------------------------------------------------------------
// Streaming entry points (two sequential file scans, no buffering)
// ---------------------------------------------------------------------

/// Sniff the first bytes of `path` for the binary-snapshot magic
/// ([`crate::snapshot`]). `Ok(true)` means the file is a snapshot and
/// every `read_*_path` entry point takes the fast binary path; a short
/// or unreadable prefix is simply "not a snapshot" (text parsing will
/// produce its own error if the file is truly unreadable).
fn sniff_snapshot(path: &Path) -> bool {
    let mut prefix = [0u8; 8];
    match File::open(path).and_then(|mut f| f.read_exact(&mut prefix)) {
        Ok(()) => crate::snapshot::is_snapshot(&prefix),
        Err(_) => false,
    }
}

/// Read a SNAP-style edge list from a file with two sequential scans and
/// no edge buffering. A binary snapshot (sniffed by magic) loads on the
/// fast path instead, regardless of extension.
pub fn read_edge_list_path(path: &Path) -> std::io::Result<CompactCsr> {
    if sniff_snapshot(path) {
        return crate::snapshot::load_snapshot(path);
    }
    build_compact(&EdgeListSource::new(path.to_path_buf()))
}

/// Read a weighted (`u v w` per line) edge list from a file with two
/// sequential scans and no edge buffering. A binary snapshot (sniffed by
/// magic) loads on the fast path instead; its stored weight kind must
/// match `W`.
pub fn read_weighted_edge_list_path<W: EdgeWeight>(path: &Path) -> std::io::Result<WeightedCsr<W>> {
    if sniff_snapshot(path) {
        return crate::snapshot::load_weighted_snapshot::<W>(path);
    }
    build_weighted(&EdgeListSource::new(path.to_path_buf()))
}

/// Read DIMACS `.col` from a file with two sequential scans and no edge
/// buffering. A binary snapshot (sniffed by magic) loads on the fast
/// path instead.
pub fn read_dimacs_col_path(path: &Path) -> std::io::Result<CompactCsr> {
    if sniff_snapshot(path) {
        return crate::snapshot::load_snapshot(path);
    }
    build_compact(&DimacsSource::new(path.to_path_buf())?)
}

/// Read a Matrix Market coordinate file with two sequential scans and no
/// edge buffering. A binary snapshot (sniffed by magic) loads on the
/// fast path instead.
pub fn read_matrix_market_path(path: &Path) -> std::io::Result<CompactCsr> {
    if sniff_snapshot(path) {
        return crate::snapshot::load_snapshot(path);
    }
    build_compact(&MatrixMarketSource::new(path.to_path_buf())?)
}

/// Read a Matrix Market coordinate file as a weighted graph (the value
/// column becomes the edge weight; `pattern`/`complex` files are
/// rejected) with two sequential scans and no edge buffering. A binary
/// snapshot (sniffed by magic) loads on the fast path instead.
pub fn read_weighted_matrix_market_path<W: EdgeWeight>(
    path: &Path,
) -> std::io::Result<WeightedCsr<W>> {
    if sniff_snapshot(path) {
        return crate::snapshot::load_weighted_snapshot::<W>(path);
    }
    build_weighted(&MatrixMarketSource::new(path.to_path_buf())?)
}

// ---------------------------------------------------------------------
// `BufRead` compatibility entry points
// ---------------------------------------------------------------------

/// Read the whole input once: a one-shot reader cannot be replayed, so
/// the compatibility APIs stream over the slurped text instead (the raw
/// bytes are the only buffer — no decoded arc list is ever built; the
/// builder's two passes each re-parse the in-memory text).
fn slurp<R: BufRead>(mut reader: R) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Parse a SNAP-style edge list: one `u v` pair per line; lines starting
/// with `#` or `%` are comments. Vertex ids may be sparse; the graph is
/// sized by the maximum id + 1. Prefer [`read_edge_list_path`] for files:
/// it streams in two scans instead of buffering the text. Like every
/// two-pass ingestion, the text is *parsed* twice (count + scatter) —
/// the price of never holding a decoded edge list.
pub fn read_edge_list<R: BufRead>(reader: R) -> std::io::Result<CompactCsr> {
    let bytes = slurp(reader)?;
    build_compact(&EdgeListSource::new(&bytes[..]))
}

/// Parse a weighted (`u v w` per line) edge list. Prefer
/// [`read_weighted_edge_list_path`] for files.
pub fn read_weighted_edge_list<W: EdgeWeight, R: BufRead>(
    reader: R,
) -> std::io::Result<WeightedCsr<W>> {
    let bytes = slurp(reader)?;
    build_weighted(&EdgeListSource::new(&bytes[..]))
}

/// Parse DIMACS `.col`: `c` comments, one `p edge <n> <m>` line, `e u v`
/// edges with **1-based** vertex ids. Prefer [`read_dimacs_col_path`] for
/// files.
pub fn read_dimacs_col<R: BufRead>(reader: R) -> std::io::Result<CompactCsr> {
    let bytes = slurp(reader)?;
    build_compact(&DimacsSource::new(&bytes[..])?)
}

/// Parse a Matrix Market pattern/coordinate file (`%%MatrixMarket matrix
/// coordinate ...`) as an undirected graph. Prefer
/// [`read_matrix_market_path`] for files.
pub fn read_matrix_market<R: BufRead>(reader: R) -> std::io::Result<CompactCsr> {
    let bytes = slurp(reader)?;
    build_compact(&MatrixMarketSource::new(&bytes[..])?)
}

/// Parse a Matrix Market coordinate file as a weighted graph. Prefer
/// [`read_weighted_matrix_market_path`] for files.
pub fn read_weighted_matrix_market<W: EdgeWeight, R: BufRead>(
    reader: R,
) -> std::io::Result<WeightedCsr<W>> {
    let bytes = slurp(reader)?;
    build_weighted(&MatrixMarketSource::new(&bytes[..])?)
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

/// Write an edge list (`u v` per line, each undirected edge once).
pub fn write_edge_list<G: GraphView, W: Write>(g: &G, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# n={} m={}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Write a weighted edge list (`u v w` per line, each undirected edge
/// once; the weight prints through [`EdgeWeight::to_f64`], which
/// round-trips `f32`/`f64`/`u32` exactly).
pub fn write_weighted_edge_list<G: WeightedView, W: Write>(g: &G, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# n={} m={} weighted", g.n(), g.m())?;
    for (u, v, wt) in g.weighted_edges() {
        writeln!(w, "{u} {v} {}", wt.to_f64())?;
    }
    Ok(())
}

/// Write DIMACS `.col`.
pub fn write_dimacs_col<G: GraphView, W: Write>(g: &G, mut w: W) -> std::io::Result<()> {
    writeln!(w, "c generated by parallel-graph-coloring")?;
    writeln!(w, "p edge {} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

fn parse_field(field: Option<&str>, what: &str, line: &str) -> std::io::Result<u32> {
    field
        .ok_or_else(|| bad(format!("missing {what} in line {line:?}")))?
        .parse::<u32>()
        .map_err(|e| bad(format!("bad {what} in line {line:?}: {e}")))
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, generate_weighted, GraphSpec};

    #[test]
    fn fast_u32_parser_agrees_with_std() {
        for s in ["0", "1", "42", "4294967295", "999999999", "10"] {
            assert_eq!(
                parse_u32_ascii(s.as_bytes()),
                s.parse::<u32>().ok(),
                "{s:?}"
            );
        }
        for s in [
            "",
            "-1",
            "+1",
            "4294967296",
            "99999999999",
            "1 2",
            "x",
            "1.5",
        ] {
            assert_eq!(parse_u32_ascii(s.as_bytes()), None, "{s:?}");
        }
    }

    #[test]
    fn tokenizer_splits_on_any_whitespace() {
        let mut s: &[u8] = b"  12\t34  \r";
        assert_eq!(next_token(&mut s), Some(&b"12"[..]));
        assert_eq!(next_token(&mut s), Some(&b"34"[..]));
        assert_eq!(next_token(&mut s), None);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = generate(&GraphSpec::ErdosRenyi { n: 100, m: 300 }, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        // Isolated trailing vertices may shrink n; compare edge sets.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn weighted_edge_list_roundtrip() {
        let g = generate_weighted::<f64>(&GraphSpec::ErdosRenyi { n: 80, m: 240 }, 4);
        let mut buf = Vec::new();
        write_weighted_edge_list(&g, &mut buf).unwrap();
        let g2 = read_weighted_edge_list::<f64, _>(&buf[..]).unwrap();
        let e1: Vec<_> = g.weighted_edges().collect();
        let e2: Vec<_> = g2.weighted_edges().collect();
        assert_eq!(e1, e2, "weights survive the text round-trip");
    }

    #[test]
    fn weighted_edge_list_requires_third_column() {
        assert!(read_weighted_edge_list::<f32, _>("0 1 2.5\n1 2\n".as_bytes()).is_err());
        assert!(read_weighted_edge_list::<f32, _>("0 1 x\n".as_bytes()).is_err());
        // The same text reads fine unweighted (third column ignored).
        let g = read_edge_list("0 1 2.5\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let text = "# comment\n\n% other\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_bad_input_errors() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("17\n".as_bytes()).is_err());
        assert!(read_edge_list("-1 2\n".as_bytes()).is_err());
        assert!(
            read_edge_list("4294967296 0\n".as_bytes()).is_err(),
            "overflow"
        );
    }

    #[test]
    fn edge_list_empty_input() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = generate(&GraphSpec::Cycle { n: 12 }, 0);
        let mut buf = Vec::new();
        write_dimacs_col(&g, &mut buf).unwrap();
        let g2 = read_dimacs_col(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_parses_reference_text() {
        let text = "c sample\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = read_dimacs_col(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn dimacs_declared_isolated_tail_survives() {
        // n=6 declared but ids only reach 3: the declared size wins.
        let text = "p edge 6 2\ne 1 2\ne 2 3\n";
        let g = read_dimacs_col(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn dimacs_errors() {
        assert!(read_dimacs_col("e 1 2\n".as_bytes()).is_err(), "no header");
        assert!(
            read_dimacs_col("p edge 2 1\ne 0 1\n".as_bytes()).is_err(),
            "0-based id"
        );
        assert!(
            read_dimacs_col("p edge 2 1\ne 1 5\n".as_bytes()).is_err(),
            "out of range"
        );
        assert!(
            read_dimacs_col("p foo 2 1\n".as_bytes()).is_err(),
            "bad problem type"
        );
    }

    #[test]
    fn matrix_market_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    4 4 3\n1 2\n2 3\n4 4\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2, "self-loop (4,4) dropped");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn matrix_market_with_values() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 2\n1 2 0.5\n3 1 -2e3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 2));
        // The same file read weighted keeps the values.
        let wg = read_weighted_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(wg.structure(), &g);
        assert_eq!(wg.edge_weight(0, 1), Some(0.5));
        assert_eq!(wg.edge_weight(2, 0), Some(-2e3));
    }

    #[test]
    fn matrix_market_integer_values_and_duplicate_max() {
        let text = "%%MatrixMarket matrix coordinate integer general\n\
                    3 3 3\n1 2 4\n2 1 9\n2 3 1\n";
        let wg = read_weighted_matrix_market::<u32, _>(text.as_bytes()).unwrap();
        assert_eq!(wg.edge_weight(0, 1), Some(9), "duplicate entry keeps max");
        assert_eq!(wg.edge_weight(1, 2), Some(1));
    }

    #[test]
    fn matrix_market_rejects_complex_and_mismatched_fields() {
        // `complex` is rejected at header parse, even unweighted.
        let complex = "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 0.5 1.5\n";
        assert!(read_matrix_market(complex.as_bytes()).is_err());
        assert!(read_weighted_matrix_market::<f64, _>(complex.as_bytes()).is_err());
        // Declared `real` but a value is missing: InvalidData, not a
        // silently wrong graph.
        let missing = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 0.5\n2 1\n";
        assert!(read_matrix_market(missing.as_bytes()).is_err());
        // Declared `pattern` but values present.
        let extra = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2 0.5\n";
        assert!(read_matrix_market(extra.as_bytes()).is_err());
        // Complex-shaped data under a real header.
        let wide = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 0.5 1.5\n";
        assert!(read_matrix_market(wide.as_bytes()).is_err());
        // Weighted read of a pattern file: no values to read.
        let pattern = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        assert!(read_weighted_matrix_market::<f32, _>(pattern.as_bytes()).is_err());
        assert!(read_matrix_market(pattern.as_bytes()).is_ok());
    }

    #[test]
    fn matrix_market_errors() {
        assert!(
            read_matrix_market("1 1 0\n".as_bytes()).is_err(),
            "no header"
        );
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real\n2 2\n".as_bytes()).is_err(),
            "dense format unsupported"
        );
        assert!(
            read_matrix_market("%%MatrixMarket matrix coordinate pattern\n2 2 1\n0 1\n".as_bytes())
                .is_err(),
            "0-based entry"
        );
        assert!(
            read_matrix_market("%%MatrixMarket matrix coordinate pattern\n2 2 1\n3 1\n".as_bytes())
                .is_err(),
            "out of range"
        );
    }

    #[test]
    fn sources_replay_identically() {
        // The bit-for-bit replay contract the two-pass builder relies on.
        let text = "p edge 5 3\ne 1 2\ne 4 5\ne 2 3\n".as_bytes();
        let src = DimacsSource::new(text).unwrap();
        let mut a: Vec<(u32, u32)> = Vec::new();
        let mut b: Vec<(u32, u32)> = Vec::new();
        src.replay(&mut |c, _| a.extend_from_slice(c)).unwrap();
        src.replay(&mut |c, _| b.extend_from_slice(c)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![(0, 1), (3, 4), (1, 2)]);
        assert_eq!(src.declared_n(), 5);
    }
}
