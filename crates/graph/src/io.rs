//! Graph I/O.
//!
//! Three interchange formats so users can run the paper's real datasets
//! when they have them:
//!
//! * whitespace-separated **edge lists** (`u v` per line, `#` comments) —
//!   the SNAP/KONECT distribution format,
//! * **DIMACS `.col`** (`p edge n m` header, `e u v` lines, 1-based) — the
//!   classic coloring-benchmark format,
//! * **Matrix Market** coordinate files — the SuiteSparse format.
//!
//! Every reader is a replayable [`EdgeSource`]: parsing happens inside
//! [`EdgeSource::replay`], so the two-pass streaming builder
//! ([`crate::stream`]) ingests a file with **two sequential scans and no
//! edge buffering**. The [`Reopen`] trait abstracts "give me a fresh
//! reader over the same bytes" — a path reopens the file, a byte slice
//! rewinds for free — so the same parser serves the streaming
//! [`read_edge_list_path`]-style entry points and the buffered
//! [`read_edge_list`]-style `BufRead` compatibility APIs (which slurp the
//! input once, then stream over the in-memory bytes: text is the only
//! buffer, never a decoded arc list).

use crate::compact::CompactCsr;
use crate::stream::{build_compact, ChunkFn, EdgeSink, EdgeSource};
use crate::view::GraphView;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Input that can be opened for reading any number of times, yielding the
/// identical byte stream — what makes a file-backed [`EdgeSource`]
/// replayable.
pub trait Reopen: Sync {
    /// The reader one scan runs over.
    type Reader: BufRead;
    /// Open a fresh reader at the start of the input.
    fn reopen(&self) -> std::io::Result<Self::Reader>;
}

/// A path reopens the underlying file (the streaming case: two
/// sequential scans of the file, zero buffering).
impl Reopen for PathBuf {
    type Reader = BufReader<File>;

    fn reopen(&self) -> std::io::Result<Self::Reader> {
        Ok(BufReader::new(File::open(self)?))
    }
}

/// In-memory bytes replay for free (the compatibility case and tests).
impl<'a> Reopen for &'a [u8] {
    type Reader = &'a [u8];

    fn reopen(&self) -> std::io::Result<Self::Reader> {
        Ok(*self)
    }
}

/// SNAP-style edge list as a streaming [`EdgeSource`]: one `u v` pair per
/// line, `#`/`%` comment lines. Vertex ids may be sparse; the builder
/// sizes the graph by the maximum id + 1 (so
/// [`num_vertices`](EdgeSource::num_vertices) reports 0 — unknown until
/// scanned).
pub struct EdgeListSource<R: Reopen> {
    input: R,
}

impl<R: Reopen> EdgeListSource<R> {
    /// Wrap a replayable input.
    pub fn new(input: R) -> Self {
        Self { input }
    }
}

impl<R: Reopen> EdgeSource for EdgeListSource<R> {
    fn num_vertices(&self) -> usize {
        0
    }

    fn replay(&self, emit: &mut ChunkFn<'_>) -> std::io::Result<()> {
        let reader = self.input.reopen()?;
        let mut sink = EdgeSink::new(emit);
        for line in reader.lines() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let u: u32 = parse_field(it.next(), "source", t)?;
            let v: u32 = parse_field(it.next(), "target", t)?;
            sink.push(u, v);
        }
        Ok(())
    }
}

/// DIMACS `.col` as a streaming [`EdgeSource`]: `c` comments, one
/// `p edge <n> <m>` line, `e u v` edges with **1-based** vertex ids.
/// The header is parsed eagerly by [`DimacsSource::new`] (a short partial
/// read), so the declared `n` and edge hint are known before the scans.
pub struct DimacsSource<R: Reopen> {
    input: R,
    n: usize,
    m: usize,
}

impl<R: Reopen> DimacsSource<R> {
    /// Wrap a replayable input, reading ahead to the `p edge` header.
    /// Errors if the header is missing or the problem type unsupported.
    pub fn new(input: R) -> std::io::Result<Self> {
        let mut header = None;
        for line in input.reopen()?.lines() {
            let line = line?;
            if let Some(rest) = line.trim().strip_prefix("p ") {
                let t = line.trim();
                let mut it = rest.split_whitespace();
                let kind = it.next().unwrap_or("");
                if kind != "edge" && kind != "edges" && kind != "col" {
                    return Err(bad(format!("unsupported problem type {kind:?}")));
                }
                let n = parse_field(it.next(), "n", t)? as usize;
                let m = parse_field(it.next(), "m", t)
                    .map(|m| m as usize)
                    .unwrap_or(0);
                header = Some((n, m));
                break;
            }
        }
        let (n, m) = header.ok_or_else(|| bad("missing 'p edge' header".into()))?;
        Ok(Self { input, n, m })
    }

    /// Declared vertex count from the `p edge` header.
    pub fn declared_n(&self) -> usize {
        self.n
    }
}

impl<R: Reopen> EdgeSource for DimacsSource<R> {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        Some(self.m)
    }

    fn replay(&self, emit: &mut ChunkFn<'_>) -> std::io::Result<()> {
        let reader = self.input.reopen()?;
        let mut sink = EdgeSink::new(emit);
        for line in reader.lines() {
            let line = line?;
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("e ") {
                let mut it = rest.split_whitespace();
                let u: u32 = parse_field(it.next(), "u", t)?;
                let v: u32 = parse_field(it.next(), "v", t)?;
                if u == 0 || v == 0 {
                    return Err(bad(format!("DIMACS ids are 1-based, got line {t:?}")));
                }
                if u as usize > self.n || v as usize > self.n {
                    return Err(bad(format!(
                        "edge ({u},{v}) out of declared range n={}",
                        self.n
                    )));
                }
                sink.push(u - 1, v - 1);
            }
        }
        Ok(())
    }
}

/// Matrix Market coordinate file as a streaming [`EdgeSource`]:
/// rows/columns are vertices, entries are edges (values, if present, are
/// ignored). The `%%MatrixMarket` header and size line are parsed eagerly
/// by [`MatrixMarketSource::new`].
pub struct MatrixMarketSource<R: Reopen> {
    input: R,
    n: usize,
    nnz: usize,
}

impl<R: Reopen> MatrixMarketSource<R> {
    /// Wrap a replayable input, reading ahead to the header and size
    /// line. Errors on missing/dense/non-matrix headers.
    pub fn new(input: R) -> std::io::Result<Self> {
        let mut lines = input.reopen()?.lines();
        let header = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    if line.starts_with("%%MatrixMarket") {
                        break line;
                    } else if !line.trim().is_empty() {
                        return Err(bad("missing %%MatrixMarket header".into()));
                    }
                }
                None => return Err(bad("empty Matrix Market file".into())),
            }
        };
        let lower = header.to_ascii_lowercase();
        if !lower.contains("matrix") || !lower.contains("coordinate") {
            return Err(bad(format!("unsupported Matrix Market header {header:?}")));
        }
        // Size line: first non-comment line after the header.
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let nrows = parse_field(it.next(), "rows", t)? as usize;
            let ncols = parse_field(it.next(), "cols", t)? as usize;
            let nnz = parse_field(it.next(), "nnz", t)? as usize;
            return Ok(Self {
                input,
                n: nrows.max(ncols),
                nnz,
            });
        }
        Err(bad("missing Matrix Market size line".into()))
    }
}

impl<R: Reopen> EdgeSource for MatrixMarketSource<R> {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn edge_hint(&self) -> Option<usize> {
        Some(self.nnz)
    }

    fn replay(&self, emit: &mut ChunkFn<'_>) -> std::io::Result<()> {
        let reader = self.input.reopen()?;
        let mut sink = EdgeSink::new(emit);
        let mut past_size_line = false;
        for line in reader.lines() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            if !past_size_line {
                past_size_line = true; // validated by `new`
                continue;
            }
            let mut it = t.split_whitespace();
            let r: u32 = parse_field(it.next(), "row", t)?;
            let c: u32 = parse_field(it.next(), "col", t)?;
            if r == 0 || c == 0 {
                return Err(bad(format!("Matrix Market ids are 1-based: {t:?}")));
            }
            if r as usize > self.n || c as usize > self.n {
                return Err(bad(format!("entry ({r},{c}) exceeds size {}", self.n)));
            }
            sink.push(r - 1, c - 1); // value column (if any) is ignored
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Streaming entry points (two sequential file scans, no buffering)
// ---------------------------------------------------------------------

/// Read a SNAP-style edge list from a file with two sequential scans and
/// no edge buffering.
pub fn read_edge_list_path(path: &Path) -> std::io::Result<CompactCsr> {
    build_compact(&EdgeListSource::new(path.to_path_buf()))
}

/// Read DIMACS `.col` from a file with two sequential scans and no edge
/// buffering.
pub fn read_dimacs_col_path(path: &Path) -> std::io::Result<CompactCsr> {
    build_compact(&DimacsSource::new(path.to_path_buf())?)
}

/// Read a Matrix Market coordinate file with two sequential scans and no
/// edge buffering.
pub fn read_matrix_market_path(path: &Path) -> std::io::Result<CompactCsr> {
    build_compact(&MatrixMarketSource::new(path.to_path_buf())?)
}

// ---------------------------------------------------------------------
// `BufRead` compatibility entry points
// ---------------------------------------------------------------------

/// Read the whole input once: a one-shot reader cannot be replayed, so
/// the compatibility APIs stream over the slurped text instead (the raw
/// bytes are the only buffer — no decoded arc list is ever built; the
/// builder's two passes each re-parse the in-memory text).
fn slurp<R: BufRead>(mut reader: R) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Parse a SNAP-style edge list: one `u v` pair per line; lines starting
/// with `#` or `%` are comments. Vertex ids may be sparse; the graph is
/// sized by the maximum id + 1. Prefer [`read_edge_list_path`] for files:
/// it streams in two scans instead of buffering the text. Like every
/// two-pass ingestion, the text is *parsed* twice (count + scatter) —
/// the price of never holding a decoded edge list.
pub fn read_edge_list<R: BufRead>(reader: R) -> std::io::Result<CompactCsr> {
    let bytes = slurp(reader)?;
    build_compact(&EdgeListSource::new(&bytes[..]))
}

/// Parse DIMACS `.col`: `c` comments, one `p edge <n> <m>` line, `e u v`
/// edges with **1-based** vertex ids. Prefer [`read_dimacs_col_path`] for
/// files.
pub fn read_dimacs_col<R: BufRead>(reader: R) -> std::io::Result<CompactCsr> {
    let bytes = slurp(reader)?;
    build_compact(&DimacsSource::new(&bytes[..])?)
}

/// Parse a Matrix Market pattern/coordinate file (`%%MatrixMarket matrix
/// coordinate ...`) as an undirected graph. Prefer
/// [`read_matrix_market_path`] for files.
pub fn read_matrix_market<R: BufRead>(reader: R) -> std::io::Result<CompactCsr> {
    let bytes = slurp(reader)?;
    build_compact(&MatrixMarketSource::new(&bytes[..])?)
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

/// Write an edge list (`u v` per line, each undirected edge once).
pub fn write_edge_list<G: GraphView, W: Write>(g: &G, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# n={} m={}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Write DIMACS `.col`.
pub fn write_dimacs_col<G: GraphView, W: Write>(g: &G, mut w: W) -> std::io::Result<()> {
    writeln!(w, "c generated by parallel-graph-coloring")?;
    writeln!(w, "p edge {} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

fn parse_field(field: Option<&str>, what: &str, line: &str) -> std::io::Result<u32> {
    field
        .ok_or_else(|| bad(format!("missing {what} in line {line:?}")))?
        .parse::<u32>()
        .map_err(|e| bad(format!("bad {what} in line {line:?}: {e}")))
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GraphSpec};

    #[test]
    fn edge_list_roundtrip() {
        let g = generate(&GraphSpec::ErdosRenyi { n: 100, m: 300 }, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        // Isolated trailing vertices may shrink n; compare edge sets.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let text = "# comment\n\n% other\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_bad_input_errors() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("17\n".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_empty_input() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = generate(&GraphSpec::Cycle { n: 12 }, 0);
        let mut buf = Vec::new();
        write_dimacs_col(&g, &mut buf).unwrap();
        let g2 = read_dimacs_col(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_parses_reference_text() {
        let text = "c sample\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = read_dimacs_col(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn dimacs_declared_isolated_tail_survives() {
        // n=6 declared but ids only reach 3: the declared size wins.
        let text = "p edge 6 2\ne 1 2\ne 2 3\n";
        let g = read_dimacs_col(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn dimacs_errors() {
        assert!(read_dimacs_col("e 1 2\n".as_bytes()).is_err(), "no header");
        assert!(
            read_dimacs_col("p edge 2 1\ne 0 1\n".as_bytes()).is_err(),
            "0-based id"
        );
        assert!(
            read_dimacs_col("p edge 2 1\ne 1 5\n".as_bytes()).is_err(),
            "out of range"
        );
        assert!(
            read_dimacs_col("p foo 2 1\n".as_bytes()).is_err(),
            "bad problem type"
        );
    }

    #[test]
    fn matrix_market_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    4 4 3\n1 2\n2 3\n4 4\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2, "self-loop (4,4) dropped");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn matrix_market_with_values() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 2\n1 2 0.5\n3 1 -2e3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn matrix_market_errors() {
        assert!(
            read_matrix_market("1 1 0\n".as_bytes()).is_err(),
            "no header"
        );
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real\n2 2\n".as_bytes()).is_err(),
            "dense format unsupported"
        );
        assert!(
            read_matrix_market("%%MatrixMarket matrix coordinate pattern\n2 2 1\n0 1\n".as_bytes())
                .is_err(),
            "0-based entry"
        );
        assert!(
            read_matrix_market("%%MatrixMarket matrix coordinate pattern\n2 2 1\n3 1\n".as_bytes())
                .is_err(),
            "out of range"
        );
    }

    #[test]
    fn sources_replay_identically() {
        // The bit-for-bit replay contract the two-pass builder relies on.
        let text = "p edge 5 3\ne 1 2\ne 4 5\ne 2 3\n".as_bytes();
        let src = DimacsSource::new(text).unwrap();
        let mut a: Vec<(u32, u32)> = Vec::new();
        let mut b: Vec<(u32, u32)> = Vec::new();
        src.replay(&mut |c| a.extend_from_slice(c)).unwrap();
        src.replay(&mut |c| b.extend_from_slice(c)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![(0, 1), (3, 4), (1, 2)]);
        assert_eq!(src.declared_n(), 5);
    }
}
