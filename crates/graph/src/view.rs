//! The representation-generic graph interface.
//!
//! Every algorithm in the workspace is written against [`GraphView`], not a
//! concrete CSR struct, so alternative storage layouts ([`crate::CompactCsr`]
//! with 4-byte offsets, the zero-copy [`crate::InducedView`], or any future
//! weighted/streaming representation) can be threaded through the whole
//! stack — orderings, colorers, mining, the cache simulator — without
//! touching a single algorithm.
//!
//! The contract mirrors the paper's CSR semantics (§II-A): vertices are ids
//! `0..n`, every adjacency is **sorted strictly ascending** (no duplicates,
//! no self-loops), and edges are symmetric. Algorithms rely on the sorted
//! order for merge intersections and on iteration determinism for
//! bit-identical colorings across representations.

use std::ops::Range;

/// Storage footprint of a graph representation, split the way the paper
/// budgets CSR memory: `n` offset words plus `2m` neighbor words (§II-A).
///
/// The harness prints these per graph so layout savings (e.g.
/// [`crate::CompactCsr`]'s 4-byte offsets) are visible in experiment
/// tables, and the cache simulator uses the element widths to lay out its
/// virtual address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphMemory {
    /// Bytes per offset entry (the paper's n-term word width).
    pub offset_width: usize,
    /// Number of offset entries (`n + 1` for CSR-style layouts).
    pub offset_count: usize,
    /// Bytes per neighbor entry.
    pub neighbor_width: usize,
    /// Number of stored neighbor entries (`2m` for undirected CSR).
    pub neighbor_count: usize,
    /// Bytes of any auxiliary structures (masks, remaps) a view carries on
    /// top of the arrays it borrows.
    pub aux_bytes: usize,
}

impl GraphMemory {
    /// Total bytes spent on offsets.
    pub fn offset_bytes(&self) -> usize {
        self.offset_width * self.offset_count
    }

    /// Total bytes spent on neighbors.
    pub fn neighbor_bytes(&self) -> usize {
        self.neighbor_width * self.neighbor_count
    }

    /// Offsets + neighbors + auxiliary bytes.
    pub fn total_bytes(&self) -> usize {
        self.offset_bytes() + self.neighbor_bytes() + self.aux_bytes
    }
}

/// An immutable, undirected, simple graph behind a representation-generic
/// interface.
///
/// # Contract
///
/// * vertices are `0..n()`; [`neighbors`](Self::neighbors) yields each
///   adjacency **strictly ascending**, without self-loops, and
///   symmetrically (`u ∈ N(v) ⇔ v ∈ N(u)`),
/// * [`degree`](Self::degree)`(v)` equals `neighbors(v).count()` and is
///   O(1),
/// * iteration order is deterministic, so every coloring algorithm in the
///   workspace produces bit-identical output on any two views exposing the
///   same abstract graph.
///
/// `Sync` is a supertrait: all hot loops traverse the graph from many
/// threads at once.
///
/// Implementations: [`crate::CsrGraph`] (legacy `usize`-offset CSR),
/// [`crate::CompactCsr`] (the default; 4-byte offsets when `2m <
/// u32::MAX`), [`crate::InducedView`] (zero-copy induced subgraph of any
/// other view).
pub trait GraphView: Sync {
    /// Iterator over the sorted neighbor ids of one vertex.
    type Neighbors<'a>: Iterator<Item = u32> + 'a
    where
        Self: 'a;

    /// Number of vertices `n`.
    fn n(&self) -> usize;

    /// Number of stored directed arcs (`2m`).
    fn num_arcs(&self) -> usize;

    /// Degree of vertex `v` (O(1)).
    fn degree(&self, v: u32) -> u32;

    /// The sorted neighbors of `v`.
    fn neighbors(&self, v: u32) -> Self::Neighbors<'_>;

    /// Maximum degree Δ. Implementations cache this at construction — it
    /// is queried per run for palette sizing and quality bounds.
    fn max_degree(&self) -> u32;

    // ---- derived stats (default methods) ----------------------------

    /// Number of undirected edges `m`.
    fn m(&self) -> usize {
        self.num_arcs() / 2
    }

    /// All vertex ids.
    fn vertices(&self) -> Range<u32> {
        0..self.n() as u32
    }

    /// Minimum degree δ.
    fn min_degree(&self) -> u32 {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Average degree δ̂ = 2m / n.
    fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.n() as f64
        }
    }

    /// Degree array `D = [deg(v_1) … deg(v_n)]` (Alg. 1, line 4).
    fn degree_array(&self) -> Vec<u32> {
        (0..self.n() as u32).map(|v| self.degree(v)).collect()
    }

    /// True if `{u, v}` is an edge. The default scans `N(u)`;
    /// slice-backed implementations override with a binary search.
    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).any(|w| w == v)
    }

    /// Iterate undirected edges `(u, v)` with `u < v`.
    fn edges(&self) -> EdgeIter<'_, Self>
    where
        Self: Sized,
    {
        EdgeIter {
            g: self,
            v: 0,
            inner: None,
        }
    }

    /// Storage footprint of this representation. The default assumes the
    /// legacy layout: machine-word offsets, 4-byte neighbors.
    fn memory_footprint(&self) -> GraphMemory {
        GraphMemory {
            offset_width: std::mem::size_of::<usize>(),
            offset_count: self.n() + 1,
            neighbor_width: 4,
            neighbor_count: self.num_arcs(),
            aux_bytes: 0,
        }
    }
}

/// Iterator behind [`GraphView::edges`]: each undirected edge once, as
/// `(u, v)` with `u < v`, in ascending `(u, v)` order.
pub struct EdgeIter<'g, G: GraphView> {
    g: &'g G,
    v: u32,
    inner: Option<G::Neighbors<'g>>,
}

impl<G: GraphView> Iterator for EdgeIter<'_, G> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            if let Some(it) = &mut self.inner {
                for u in it.by_ref() {
                    if self.v < u {
                        return Some((self.v, u));
                    }
                }
                self.inner = None;
                self.v += 1;
            }
            if (self.v as usize) >= self.g.n() {
                return None;
            }
            self.inner = Some(self.g.neighbors(self.v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn default_methods_match_inherent_ones() {
        let g = from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        // Call through the trait explicitly.
        fn stats<G: GraphView>(g: &G) -> (usize, usize, u32, u32, f64, Vec<u32>) {
            (
                g.n(),
                g.m(),
                g.max_degree(),
                g.min_degree(),
                g.avg_degree(),
                g.degree_array(),
            )
        }
        let (n, m, dmax, dmin, davg, da) = stats(&g);
        assert_eq!((n, m, dmax, dmin), (4, 4, 3, 1));
        assert!((davg - 2.0).abs() < 1e-12);
        assert_eq!(da, vec![2, 2, 3, 1]);
    }

    #[test]
    fn trait_edges_each_once_sorted() {
        let g = from_edges(4, &[(2, 3), (0, 1), (1, 2), (0, 2)]);
        fn collect<G: GraphView>(g: &G) -> Vec<(u32, u32)> {
            g.edges().collect()
        }
        assert_eq!(collect(&g), vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn trait_has_edge_default_and_override_agree() {
        let g = from_edges(5, &[(0, 4), (1, 3), (2, 4)]);
        fn via_trait<G: GraphView>(g: &G, u: u32, v: u32) -> bool {
            g.has_edge(u, v)
        }
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(via_trait(&g, u, v), g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn memory_totals_add_up() {
        let m = GraphMemory {
            offset_width: 4,
            offset_count: 11,
            neighbor_width: 4,
            neighbor_count: 20,
            aux_bytes: 3,
        };
        assert_eq!(m.offset_bytes(), 44);
        assert_eq!(m.neighbor_bytes(), 80);
        assert_eq!(m.total_bytes(), 127);
    }
}
