//! The representation-generic graph interface.
//!
//! Every algorithm in the workspace is written against [`GraphView`], not a
//! concrete CSR struct, so alternative storage layouts ([`crate::CompactCsr`]
//! with 4-byte offsets, the zero-copy [`crate::InducedView`], or any future
//! weighted/streaming representation) can be threaded through the whole
//! stack — orderings, colorers, mining, the cache simulator — without
//! touching a single algorithm.
//!
//! The contract mirrors the paper's CSR semantics (§II-A): vertices are ids
//! `0..n`, every adjacency is **sorted strictly ascending** (no duplicates,
//! no self-loops), and edges are symmetric. Algorithms rely on the sorted
//! order for merge intersections and on iteration determinism for
//! bit-identical colorings across representations.

use crate::weight::EdgeWeight;
use std::ops::Range;

/// Issue a best-effort read-prefetch hint for the cache line holding
/// `*p`. A no-op on architectures without a prefetch instruction — purely
/// a performance hint, never a semantic one.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults, even on invalid addresses.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm never faults, even on invalid addresses.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p as *const u8, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Storage footprint of a graph representation, split the way the paper
/// budgets CSR memory: `n` offset words plus `2m` neighbor words (§II-A).
///
/// The harness prints these per graph so layout savings (e.g.
/// [`crate::CompactCsr`]'s 4-byte offsets) are visible in experiment
/// tables, and the cache simulator uses the element widths to lay out its
/// virtual address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphMemory {
    /// Bytes per offset entry (the paper's n-term word width).
    pub offset_width: usize,
    /// Number of offset entries (`n + 1` for CSR-style layouts).
    pub offset_count: usize,
    /// Bytes per neighbor entry.
    pub neighbor_width: usize,
    /// Number of stored neighbor entries (`2m` for undirected CSR).
    pub neighbor_count: usize,
    /// Bytes of **heap-owned** compressed (encoded) neighbor storage,
    /// when the representation stores adjacencies as packed bytes
    /// instead of raw `u32` entries ([`crate::CompressedCsr`]'s
    /// delta-varint arena). Kept separate from
    /// [`neighbor_bytes`](Self::neighbor_bytes) so tables can print the
    /// compression ratio against the paper's `2m` word budget; always 0
    /// for array-backed layouts — and also 0 when the arena is served
    /// zero-copy from an `mmap`, which lands in
    /// [`encoded_mapped_bytes`](Self::encoded_mapped_bytes) instead.
    pub encoded_bytes: usize,
    /// Bytes of the encoded neighbor arena served zero-copy from an
    /// `mmap` (page cache, not this process's heap) — the
    /// [`crate::snapshot::load_compressed_snapshot`] fast path. An arena
    /// is entirely heap-owned or entirely mapped, so the representation's
    /// encoded length regardless of backing is
    /// [`encoded_len`](Self::encoded_len); consumers that model the
    /// traversed layout (the cache simulator, the harness's `graph_MiB`
    /// column) must use that, while heap accounting
    /// ([`total_bytes`](Self::total_bytes)) charges only
    /// [`encoded_bytes`](Self::encoded_bytes).
    pub encoded_mapped_bytes: usize,
    /// Bytes of any auxiliary structures (masks, remaps, decode scratch)
    /// a view carries on top of the arrays it borrows.
    pub aux_bytes: usize,
    /// Bytes of the edge-payload (weights) array, when the representation
    /// carries one ([`crate::WeightedCsr`]). Kept separate from
    /// [`aux_bytes`](Self::aux_bytes) so tables can show the weighted
    /// surcharge next to the paper's structural budget; always 0 for
    /// unweighted layouts and for the zero-sized `()` payload.
    pub weight_bytes: usize,
}

impl GraphMemory {
    /// Total bytes spent on offsets.
    pub fn offset_bytes(&self) -> usize {
        self.offset_width * self.offset_count
    }

    /// Total bytes spent on neighbors.
    pub fn neighbor_bytes(&self) -> usize {
        self.neighbor_width * self.neighbor_count
    }

    /// Length of the encoded neighbor representation regardless of
    /// backing: heap-owned plus `mmap`-served arena bytes (an arena is
    /// entirely one or the other). 0 for raw-array layouts, so
    /// `encoded_len() > 0` identifies a representation whose neighbor
    /// traversal streams packed bytes rather than `u32` slots.
    pub fn encoded_len(&self) -> usize {
        self.encoded_bytes + self.encoded_mapped_bytes
    }

    /// Offsets + neighbors + heap-owned encoded + auxiliary + weight
    /// bytes: the process-heap charge. An `mmap`-served arena is
    /// excluded (page cache, not heap) — see
    /// [`structural_bytes`](Self::structural_bytes) for the
    /// representation as traversed.
    pub fn total_bytes(&self) -> usize {
        self.offset_bytes()
            + self.neighbor_bytes()
            + self.encoded_bytes
            + self.aux_bytes
            + self.weight_bytes
    }

    /// Bytes of the structural graph storage actually backing this
    /// representation's traversal: offsets + raw neighbors + encoded
    /// neighbors (whether heap-owned or `mmap`-served) + auxiliary
    /// structures — everything except the edge payload. This is the
    /// number the harness prints as `graph_MiB`, so compact, compressed
    /// (including snapshot-loaded zero-copy arenas), and sharded rows
    /// are comparable.
    pub fn structural_bytes(&self) -> usize {
        self.offset_bytes() + self.neighbor_bytes() + self.encoded_len() + self.aux_bytes
    }
}

/// An immutable, undirected, simple graph behind a representation-generic
/// interface.
///
/// # Contract
///
/// * vertices are `0..n()`; [`neighbors`](Self::neighbors) yields each
///   adjacency **strictly ascending**, without self-loops, and
///   symmetrically (`u ∈ N(v) ⇔ v ∈ N(u)`),
/// * [`degree`](Self::degree)`(v)` equals `neighbors(v).count()` and is
///   O(1),
/// * iteration order is deterministic, so every coloring algorithm in the
///   workspace produces bit-identical output on any two views exposing the
///   same abstract graph.
///
/// `Sync` is a supertrait: all hot loops traverse the graph from many
/// threads at once.
///
/// Implementations: [`crate::CsrGraph`] (legacy `usize`-offset CSR),
/// [`crate::CompactCsr`] (the default; 4-byte offsets when `2m <
/// u32::MAX`), [`crate::InducedView`] (zero-copy induced subgraph of any
/// other view).
pub trait GraphView: Sync {
    /// Iterator over the sorted neighbor ids of one vertex.
    type Neighbors<'a>: Iterator<Item = u32> + 'a
    where
        Self: 'a;

    /// Number of vertices `n`.
    fn n(&self) -> usize;

    /// Number of stored directed arcs (`2m`).
    fn num_arcs(&self) -> usize;

    /// Degree of vertex `v` (O(1)).
    fn degree(&self, v: u32) -> u32;

    /// The sorted neighbors of `v`.
    fn neighbors(&self, v: u32) -> Self::Neighbors<'_>;

    /// Maximum degree Δ. Implementations cache this at construction — it
    /// is queried per run for palette sizing and quality bounds.
    fn max_degree(&self) -> u32;

    // ---- derived stats (default methods) ----------------------------

    /// Number of undirected edges `m`.
    fn m(&self) -> usize {
        self.num_arcs() / 2
    }

    /// All vertex ids.
    fn vertices(&self) -> Range<u32> {
        0..self.n() as u32
    }

    /// Minimum degree δ.
    fn min_degree(&self) -> u32 {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Average degree δ̂ = 2m / n.
    fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.n() as f64
        }
    }

    /// Degree array `D = [deg(v_1) … deg(v_n)]` (Alg. 1, line 4).
    fn degree_array(&self) -> Vec<u32> {
        (0..self.n() as u32).map(|v| self.degree(v)).collect()
    }

    /// True if `{u, v}` is an edge. The default scans `N(u)`;
    /// slice-backed implementations override with a binary search.
    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).any(|w| w == v)
    }

    /// Hint the CPU to start fetching `v`'s adjacency into cache, ahead
    /// of a [`neighbors`](Self::neighbors) call a few iterations from
    /// now. A no-op by default (and on views without contiguous
    /// storage); slice-backed CSR types override it with [`prefetch_read`]
    /// of the adjacency's first cache line. Purely a performance hint —
    /// correctness never depends on it.
    #[inline]
    fn prefetch_neighbors(&self, v: u32) {
        let _ = v;
    }

    /// Iterate undirected edges `(u, v)` with `u < v`.
    fn edges(&self) -> EdgeIter<'_, Self>
    where
        Self: Sized,
    {
        EdgeIter {
            g: self,
            v: 0,
            inner: None,
        }
    }

    /// Storage footprint of this representation. The default assumes the
    /// legacy layout: machine-word offsets, 4-byte neighbors, no weights.
    fn memory_footprint(&self) -> GraphMemory {
        GraphMemory {
            offset_width: std::mem::size_of::<usize>(),
            offset_count: self.n() + 1,
            neighbor_width: 4,
            neighbor_count: self.num_arcs(),
            encoded_bytes: 0,
            encoded_mapped_bytes: 0,
            aux_bytes: 0,
            weight_bytes: 0,
        }
    }

    /// Per-thread scratch bytes a traversal of this view needs beyond the
    /// stored arrays — 0 for slice-backed CSR layouts, nonzero for
    /// decoding representations ([`crate::CompressedCsr`] materializes
    /// blocks into a scratch buffer per neighbor iterator). The
    /// scheduling layer uses it to shorten its prefetch lookahead when
    /// decode scratch competes for L1 fill capacity.
    #[inline]
    fn decode_scratch_bytes(&self) -> usize {
        0
    }
}

/// A [`GraphView`] whose edges carry a payload (an [`EdgeWeight`]).
///
/// The weighted extension of the representation-generic interface: the
/// structure is still exactly the `GraphView` contract (sorted, simple,
/// symmetric adjacencies — so every unweighted algorithm runs unchanged on
/// a weighted view), and [`weighted_neighbors`](Self::weighted_neighbors)
/// additionally yields each neighbor's edge weight in the same sorted
/// order. Weights are symmetric: `w(u, v) == w(v, u)`.
///
/// Implementations: [`crate::WeightedCsr`] (struct-of-arrays weights next
/// to a [`crate::CompactCsr`]), [`crate::InducedView`] over any weighted
/// base (zero-copy passthrough), and the unweighted CSR types themselves
/// with the unit payload `W = ()` — where every weight reads as `1.0`, so
/// weighted workloads (matching weight, weighted density) collapse to
/// their unweighted meanings.
pub trait WeightedView: GraphView {
    /// The edge payload type.
    type Weight: EdgeWeight;

    /// Iterator over `(neighbor, weight)` pairs of one vertex, in the
    /// same strictly-ascending neighbor order as
    /// [`GraphView::neighbors`].
    type WeightedNeighbors<'a>: Iterator<Item = (u32, Self::Weight)> + 'a
    where
        Self: 'a;

    /// The sorted neighbors of `v`, with their edge weights.
    fn weighted_neighbors(&self, v: u32) -> Self::WeightedNeighbors<'_>;

    /// Weight of edge `{u, v}`, `None` if absent. The default scans
    /// `N(u)`; slice-backed implementations override with a binary
    /// search.
    fn edge_weight(&self, u: u32, v: u32) -> Option<Self::Weight> {
        self.weighted_neighbors(u)
            .find(|&(x, _)| x == v)
            .map(|(_, w)| w)
    }

    /// Weighted degree `Σ_{u ∈ N(v)} w(v, u)` (unit weights: the plain
    /// degree).
    fn weighted_degree(&self, v: u32) -> f64 {
        self.weighted_neighbors(v).map(|(_, w)| w.to_f64()).sum()
    }

    /// Total edge weight `W(G) = Σ_{{u,v} ∈ E} w(u, v)` (unit weights:
    /// `m`).
    fn total_weight(&self) -> f64 {
        (0..self.n() as u32)
            .map(|v| self.weighted_degree(v))
            .sum::<f64>()
            / 2.0
    }

    /// Iterate undirected weighted edges `(u, v, w)` with `u < v`.
    fn weighted_edges(&self) -> WeightedEdgeIter<'_, Self>
    where
        Self: Sized,
    {
        WeightedEdgeIter {
            g: self,
            v: 0,
            inner: None,
        }
    }
}

/// Iterator behind [`WeightedView::weighted_edges`]: each undirected edge
/// once, as `(u, v, w)` with `u < v`, in ascending `(u, v)` order.
pub struct WeightedEdgeIter<'g, G: WeightedView> {
    g: &'g G,
    v: u32,
    inner: Option<G::WeightedNeighbors<'g>>,
}

impl<G: WeightedView> Iterator for WeightedEdgeIter<'_, G> {
    type Item = (u32, u32, G::Weight);

    fn next(&mut self) -> Option<(u32, u32, G::Weight)> {
        loop {
            if let Some(it) = &mut self.inner {
                for (u, w) in it.by_ref() {
                    if self.v < u {
                        return Some((self.v, u, w));
                    }
                }
                self.inner = None;
                self.v += 1;
            }
            if (self.v as usize) >= self.g.n() {
                return None;
            }
            self.inner = Some(self.g.weighted_neighbors(self.v));
        }
    }
}

/// Adapter giving any unweighted neighbor iterator unit weights — how the
/// plain CSR types satisfy [`WeightedView`] with `Weight = ()`.
pub struct UnitWeights<I>(pub I);

impl<I: Iterator<Item = u32>> Iterator for UnitWeights<I> {
    type Item = (u32, ());

    #[inline]
    fn next(&mut self) -> Option<(u32, ())> {
        self.0.next().map(|u| (u, ()))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Iterator behind [`GraphView::edges`]: each undirected edge once, as
/// `(u, v)` with `u < v`, in ascending `(u, v)` order.
pub struct EdgeIter<'g, G: GraphView> {
    g: &'g G,
    v: u32,
    inner: Option<G::Neighbors<'g>>,
}

impl<G: GraphView> Iterator for EdgeIter<'_, G> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            if let Some(it) = &mut self.inner {
                for u in it.by_ref() {
                    if self.v < u {
                        return Some((self.v, u));
                    }
                }
                self.inner = None;
                self.v += 1;
            }
            if (self.v as usize) >= self.g.n() {
                return None;
            }
            self.inner = Some(self.g.neighbors(self.v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn default_methods_match_inherent_ones() {
        let g = from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        // Call through the trait explicitly.
        fn stats<G: GraphView>(g: &G) -> (usize, usize, u32, u32, f64, Vec<u32>) {
            (
                g.n(),
                g.m(),
                g.max_degree(),
                g.min_degree(),
                g.avg_degree(),
                g.degree_array(),
            )
        }
        let (n, m, dmax, dmin, davg, da) = stats(&g);
        assert_eq!((n, m, dmax, dmin), (4, 4, 3, 1));
        assert!((davg - 2.0).abs() < 1e-12);
        assert_eq!(da, vec![2, 2, 3, 1]);
    }

    #[test]
    fn trait_edges_each_once_sorted() {
        let g = from_edges(4, &[(2, 3), (0, 1), (1, 2), (0, 2)]);
        fn collect<G: GraphView>(g: &G) -> Vec<(u32, u32)> {
            g.edges().collect()
        }
        assert_eq!(collect(&g), vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn trait_has_edge_default_and_override_agree() {
        let g = from_edges(5, &[(0, 4), (1, 3), (2, 4)]);
        fn via_trait<G: GraphView>(g: &G, u: u32, v: u32) -> bool {
            g.has_edge(u, v)
        }
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(via_trait(&g, u, v), g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn memory_totals_add_up() {
        let m = GraphMemory {
            offset_width: 4,
            offset_count: 11,
            neighbor_width: 4,
            neighbor_count: 20,
            encoded_bytes: 5,
            encoded_mapped_bytes: 7,
            aux_bytes: 3,
            weight_bytes: 16,
        };
        assert_eq!(m.offset_bytes(), 44);
        assert_eq!(m.neighbor_bytes(), 80);
        assert_eq!(m.encoded_len(), 12);
        // Traversed representation counts the mapped arena…
        assert_eq!(m.structural_bytes(), 139);
        // …heap accounting does not.
        assert_eq!(m.total_bytes(), 148);
    }

    #[test]
    fn unweighted_csr_is_a_unit_weighted_view() {
        let g = from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        fn weighted_stats<G: WeightedView>(g: &G) -> (f64, f64, Vec<(u32, f64)>) {
            (
                g.total_weight(),
                g.weighted_degree(2),
                g.weighted_neighbors(2)
                    .map(|(u, w)| (u, w.to_f64()))
                    .collect(),
            )
        }
        let (total, wdeg, nbrs) = weighted_stats(&g);
        assert_eq!(total, g.m() as f64, "unit total weight is m");
        assert_eq!(wdeg, g.degree(2) as f64);
        assert_eq!(nbrs, vec![(0, 1.0), (1, 1.0), (3, 1.0)]);
        assert_eq!(g.edge_weight(0, 1), Some(()));
        assert_eq!(WeightedView::edge_weight(&g, 0, 3), None);
        assert_eq!(
            g.weighted_edges()
                .map(|(u, v, _)| (u, v))
                .collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }
}
