//! Exact degeneracy, coreness, and the smallest-degree-last order (§II-B).
//!
//! "Both degeneracy and a degeneracy ordering of G can be computed in linear
//! time by sequentially removing vertices of smallest degree" — Matula &
//! Beck's bucket-queue peeling. This module is the ground truth for:
//!
//! * the exact degeneracy `d` appearing in every quality bound of the paper
//!   (`2(1+ε)d + 1`, `(2+ε)d`, `4d + 1`, `d + 1`),
//! * the SL ordering baseline (JP-SL, Greedy-SL),
//! * per-vertex coreness (used by tests to cross-check `d = max coreness`).

use crate::view::GraphView;

/// Output of the exact peeling pass.
#[derive(Clone, Debug)]
pub struct DegeneracyInfo {
    /// The degeneracy `d` of the graph: the smallest `s` such that every
    /// induced subgraph has a vertex of degree ≤ `s`.
    pub degeneracy: u32,
    /// Vertices in removal order (smallest residual degree first). In the
    /// *degeneracy ordering*, each vertex has at most `d` neighbors that
    /// appear **later** in this sequence.
    pub removal_order: Vec<u32>,
    /// `removal_pos[v]` = index of `v` in `removal_order`.
    pub removal_pos: Vec<u32>,
    /// `coreness[v]` = the largest `k` such that `v` belongs to a `k`-core.
    pub coreness: Vec<u32>,
}

/// Linear-time `O(n + m)` bucket peeling (Matula–Beck / Batagelj–Zaveršnik).
pub fn degeneracy<G: GraphView>(g: &G) -> DegeneracyInfo {
    let n = g.n();
    if n == 0 {
        return DegeneracyInfo {
            degeneracy: 0,
            removal_order: Vec::new(),
            removal_pos: Vec::new(),
            coreness: Vec::new(),
        };
    }
    let mut deg: Vec<u32> = g.degree_array();
    let max_deg = g.max_degree() as usize;

    // Bucket sort vertices by degree: `bin[d]` = start of degree-d block in
    // `vert`; `pos[v]` = index of v in `vert`.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bin[i + 1] += bin[i];
    }
    let mut vert = vec![0u32; n];
    let mut pos = vec![0u32; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n as u32 {
            let d = deg[v as usize] as usize;
            pos[v as usize] = cursor[d];
            vert[cursor[d] as usize] = v;
            cursor[d] += 1;
        }
    }

    let mut coreness = vec![0u32; n];
    let mut d_max = 0u32;
    // Peel in order of current minimum degree. Only neighbors with a
    // *strictly larger* current degree are decremented (Batagelj–Zaveršnik):
    // equal-degree neighbors belong to the same shell, and touching them
    // would break the degree-partitioned layout of `vert`.
    for i in 0..n {
        let v = vert[i];
        let dv = deg[v as usize];
        coreness[v as usize] = dv;
        d_max = d_max.max(dv);
        for u in g.neighbors(v) {
            let du = deg[u as usize];
            if du > dv {
                // Swap `u` with the head of its degree bucket, then shrink
                // the bucket — O(1) per decrement.
                let bucket_head = bin[du as usize];
                let w = vert[bucket_head as usize];
                if u != w {
                    let pu = pos[u as usize];
                    vert.swap(bucket_head as usize, pu as usize);
                    pos[u as usize] = bucket_head;
                    pos[w as usize] = pu;
                }
                bin[du as usize] += 1;
                deg[u as usize] = du - 1;
            }
        }
    }

    let mut removal_pos = vec![0u32; n];
    for (i, &v) in vert.iter().enumerate() {
        removal_pos[v as usize] = i as u32;
    }
    DegeneracyInfo {
        degeneracy: d_max,
        removal_order: vert,
        removal_pos,
        coreness,
    }
}

/// Verify the defining property of a degeneracy ordering: every vertex has
/// at most `k` neighbors that appear later in `removal_order`. Returns the
/// maximum such "forward degree" (which equals the degeneracy when the
/// order is exact).
pub fn max_forward_degree<G: GraphView>(g: &G, removal_pos: &[u32]) -> u32 {
    let mut worst = 0u32;
    for v in g.vertices() {
        let pv = removal_pos[v as usize];
        let fwd = g
            .neighbors(v)
            .filter(|&u| removal_pos[u as usize] > pv)
            .count() as u32;
        worst = worst.max(fwd);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::csr::CsrGraph;

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::empty(0);
        assert_eq!(degeneracy(&g).degeneracy, 0);
        let g = CsrGraph::empty(7);
        let info = degeneracy(&g);
        assert_eq!(info.degeneracy, 0);
        assert_eq!(info.removal_order.len(), 7);
        assert!(info.coreness.iter().all(|&c| c == 0));
    }

    #[test]
    fn path_has_degeneracy_1() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let info = degeneracy(&g);
        assert_eq!(info.degeneracy, 1);
        assert_eq!(max_forward_degree(&g, &info.removal_pos), 1);
    }

    #[test]
    fn cycle_has_degeneracy_2() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let info = degeneracy(&g);
        assert_eq!(info.degeneracy, 2);
        assert!(info.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn complete_graph_kn() {
        // K_5: degeneracy 4, all coreness 4.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = from_edges(5, &edges);
        let info = degeneracy(&g);
        assert_eq!(info.degeneracy, 4);
        assert!(info.coreness.iter().all(|&c| c == 4));
    }

    #[test]
    fn star_has_degeneracy_1() {
        // Star K_{1,6}: center degree 6 but degeneracy 1.
        let edges: Vec<(u32, u32)> = (1..7u32).map(|v| (0, v)).collect();
        let g = from_edges(7, &edges);
        let info = degeneracy(&g);
        assert_eq!(info.degeneracy, 1);
        assert_eq!(max_forward_degree(&g, &info.removal_pos), 1);
    }

    #[test]
    fn clique_plus_tail() {
        // Triangle with a pendant path: d = 2; coreness separates core
        // (2) from tail (1).
        let g = from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let info = degeneracy(&g);
        assert_eq!(info.degeneracy, 2);
        assert_eq!(info.coreness[0], 2);
        assert_eq!(info.coreness[4], 1);
    }

    #[test]
    fn removal_order_is_permutation() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let info = degeneracy(&g);
        let mut sorted = info.removal_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        for (i, &v) in info.removal_order.iter().enumerate() {
            assert_eq!(info.removal_pos[v as usize] as usize, i);
        }
    }

    #[test]
    fn forward_degree_equals_degeneracy_on_random_graph() {
        // The exact order's max forward degree must equal d.
        let edges: Vec<(u32, u32)> = (0..4000u64)
            .map(|i| {
                let h = pgc_primitives::hash_mix(i ^ 0xABCD);
                (((h >> 32) as u32) % 500, (h as u32) % 500)
            })
            .collect();
        let g = from_edges(500, &edges);
        let info = degeneracy(&g);
        assert_eq!(max_forward_degree(&g, &info.removal_pos), info.degeneracy);
        // d is also max coreness.
        assert_eq!(*info.coreness.iter().max().unwrap(), info.degeneracy);
    }
}
