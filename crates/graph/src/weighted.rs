//! [`WeightedCsr`]: the weights-augmented default representation.
//!
//! Struct-of-arrays on purpose: the structural arrays are exactly a
//! [`CompactCsr`] (so every unweighted algorithm runs on a weighted graph
//! through [`GraphView`] without streaming a single weight byte through
//! the cache), and the weights live in one separate neighbor-parallel
//! array — `weights[i]` belongs to the arc stored at `neighbors[i]`.
//! Symmetry of the builder guarantees `w(u→v) == w(v→u)`.

use crate::compact::CompactCsr;
use crate::view::{GraphMemory, GraphView, WeightedView};
use crate::weight::EdgeWeight;

/// An immutable, undirected, simple graph with one payload per edge,
/// stored as a [`CompactCsr`] plus a neighbor-parallel weights array —
/// the workspace's default [`WeightedView`] implementation, built by
/// [`build_weighted`](crate::stream::build_weighted), the weighted
/// readers, and [`generate_weighted`](crate::gen::generate_weighted).
///
/// Invariants: those of [`CompactCsr`], plus `weights.len() == 2m` and
/// weight symmetry (`w(u→v) == w(v→u)`), checked by [`validate`].
///
/// ```
/// use pgc_graph::{builder::from_weighted_edges, GraphView, WeightedView};
/// let g = from_weighted_edges(3, &[(0, 1, 2.5f64), (1, 2, 4.0)]);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.edge_weight(2, 1), Some(4.0));
/// assert_eq!(g.weighted_degree(1), 6.5);
/// // The structure is a plain CompactCsr: unweighted algorithms see the
/// // projection for free.
/// assert_eq!(g.structure().neighbors(1), &[0, 2]);
/// ```
///
/// [`validate`]: WeightedCsr::validate
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedCsr<W: EdgeWeight> {
    csr: CompactCsr,
    weights: Vec<W>,
}

impl<W: EdgeWeight> WeightedCsr<W> {
    /// Assemble from a structure and its neighbor-parallel weights array.
    ///
    /// # Panics
    ///
    /// If `weights.len() != csr.num_arcs()`. (Weight symmetry is the
    /// builder's contract; [`Self::validate`] checks it on demand, and
    /// debug builds check it here.)
    pub fn from_parts(csr: CompactCsr, weights: Vec<W>) -> Self {
        assert_eq!(
            weights.len(),
            csr.num_arcs(),
            "weights array must parallel the neighbor array"
        );
        let g = Self { csr, weights };
        #[cfg(debug_assertions)]
        if let Err(e) = g.validate() {
            panic!("invalid weighted CSR: {e}");
        }
        g
    }

    /// The unweighted structural projection (shared arrays, zero copy).
    #[inline]
    pub fn structure(&self) -> &CompactCsr {
        &self.csr
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.csr.n()
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.csr.m()
    }

    /// Number of stored directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.csr.num_arcs()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.csr.degree(v)
    }

    /// Take the structure, dropping the weights.
    pub fn into_structure(self) -> CompactCsr {
        self.csr
    }

    /// Split into structure and weights array.
    pub fn into_parts(self) -> (CompactCsr, Vec<W>) {
        (self.csr, self.weights)
    }

    /// Sorted neighbor slice of vertex `v` (structural).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        self.csr.neighbors(v)
    }

    /// The weights of `v`'s adjacency, parallel to
    /// [`neighbors`](Self::neighbors).
    #[inline]
    pub fn neighbor_weights(&self, v: u32) -> &[W] {
        &self.weights[self.csr.arc_range(v)]
    }

    /// The whole neighbor-parallel weights array.
    #[inline]
    pub fn raw_weights(&self) -> &[W] {
        &self.weights
    }

    /// Weight of edge `{u, v}` (binary search), `None` if absent.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<W> {
        let nbrs = self.csr.neighbors(u);
        let i = nbrs.binary_search(&v).ok()?;
        Some(self.neighbor_weights(u)[i])
    }

    /// Check structural invariants plus weights-array length and weight
    /// symmetry; returns the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        self.csr.validate()?;
        if self.weights.len() != self.csr.num_arcs() {
            return Err(format!(
                "weights length {} != num arcs {}",
                self.weights.len(),
                self.csr.num_arcs()
            ));
        }
        if W::IS_UNIT {
            return Ok(());
        }
        for v in self.csr.vertices() {
            let nbrs = self.csr.neighbors(v);
            let ws = self.neighbor_weights(v);
            for (&u, &w) in nbrs.iter().zip(ws) {
                if v < u {
                    match self.edge_weight(u, v) {
                        Some(back) if back == w => {}
                        other => {
                            return Err(format!(
                                "asymmetric weight on edge ({v}, {u}): {w:?} vs {other:?}"
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl<W: EdgeWeight> GraphView for WeightedCsr<W> {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, u32>>;

    #[inline]
    fn n(&self) -> usize {
        self.csr.n()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.csr.num_arcs()
    }

    #[inline]
    fn degree(&self, v: u32) -> u32 {
        self.csr.degree(v)
    }

    #[inline]
    fn neighbors(&self, v: u32) -> Self::Neighbors<'_> {
        self.csr.neighbors(v).iter().copied()
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.csr.max_degree()
    }

    #[inline]
    fn min_degree(&self) -> u32 {
        self.csr.min_degree()
    }

    fn degree_array(&self) -> Vec<u32> {
        self.csr.degree_array()
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.csr.has_edge(u, v)
    }

    #[inline]
    fn prefetch_neighbors(&self, v: u32) {
        self.csr.prefetch_neighbors(v)
    }

    fn memory_footprint(&self) -> GraphMemory {
        GraphMemory {
            weight_bytes: self.weights.len() * std::mem::size_of::<W>(),
            ..self.csr.memory_footprint()
        }
    }
}

/// Iterator over one vertex's `(neighbor, weight)` pairs — two parallel
/// slice cursors, so the unweighted neighbor stream stays contiguous.
pub struct SliceWeightedNeighbors<'a, W> {
    nbrs: std::slice::Iter<'a, u32>,
    weights: std::slice::Iter<'a, W>,
}

impl<'a, W: EdgeWeight> SliceWeightedNeighbors<'a, W> {
    /// Pair a neighbor slice with its parallel weights slice (used by the
    /// slice-backed weighted views, including the mmap snapshot).
    pub(crate) fn new(nbrs: &'a [u32], weights: &'a [W]) -> Self {
        debug_assert_eq!(nbrs.len(), weights.len());
        Self {
            nbrs: nbrs.iter(),
            weights: weights.iter(),
        }
    }
}

impl<'a, W: EdgeWeight> Iterator for SliceWeightedNeighbors<'a, W> {
    type Item = (u32, W);

    #[inline]
    fn next(&mut self) -> Option<(u32, W)> {
        Some((*self.nbrs.next()?, *self.weights.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.nbrs.size_hint()
    }
}

impl<W: EdgeWeight> WeightedView for WeightedCsr<W> {
    type Weight = W;
    type WeightedNeighbors<'a> = SliceWeightedNeighbors<'a, W>;

    #[inline]
    fn weighted_neighbors(&self, v: u32) -> SliceWeightedNeighbors<'_, W> {
        SliceWeightedNeighbors {
            nbrs: self.csr.neighbors(v).iter(),
            weights: self.neighbor_weights(v).iter(),
        }
    }

    fn edge_weight(&self, u: u32, v: u32) -> Option<W> {
        WeightedCsr::edge_weight(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, from_weighted_edges};

    #[test]
    fn weights_ride_next_to_sorted_neighbors() {
        let g = from_weighted_edges(4, &[(0u32, 3u32, 7.0f32), (0, 1, 1.0), (2, 0, 4.0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbor_weights(0), &[1.0, 4.0, 7.0]);
        assert_eq!(g.edge_weight(3, 0), Some(7.0));
        assert_eq!(g.edge_weight(1, 2), None);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn weighted_view_defaults() {
        let g = from_weighted_edges(3, &[(0u32, 1u32, 2.0f64), (1, 2, 3.0)]);
        assert_eq!(g.weighted_degree(1), 5.0);
        assert_eq!(g.total_weight(), 5.0);
        assert_eq!(
            g.weighted_neighbors(1).collect::<Vec<_>>(),
            vec![(0, 2.0), (2, 3.0)]
        );
        assert_eq!(
            g.weighted_edges().collect::<Vec<_>>(),
            vec![(0, 1, 2.0), (1, 2, 3.0)]
        );
    }

    #[test]
    fn footprint_charges_weights_separately() {
        let g = from_weighted_edges(3, &[(0u32, 1u32, 2.0f64), (1, 2, 3.0)]);
        let fp = g.memory_footprint();
        assert_eq!(fp.weight_bytes, 4 * 8, "2m = 4 arcs × 8-byte f64");
        let structural = g.structure().memory_footprint();
        assert_eq!(fp.total_bytes(), structural.total_bytes() + fp.weight_bytes);
        // A unit-weighted graph charges nothing.
        let unit = crate::stream::build_weighted::<(), _>(&{
            let mut b = crate::builder::EdgeListBuilder::new(3);
            b.add_edge(0, 1);
            b
        })
        .unwrap();
        assert_eq!(unit.memory_footprint().weight_bytes, 0);
    }

    #[test]
    fn structure_matches_plain_build() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let weighted: Vec<(u32, u32, u32)> =
            edges.iter().map(|&(u, v)| (u, v, u + 10 * v)).collect();
        let wg = from_weighted_edges(4, &weighted);
        assert_eq!(wg.structure(), &from_edges(4, &edges));
        let (csr, weights) = wg.clone().into_parts();
        assert_eq!(weights.len(), csr.num_arcs());
        assert_eq!(wg.clone().into_structure(), csr);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_weights_length_panics() {
        let csr = from_edges(3, &[(0, 1)]);
        WeightedCsr::from_parts(csr, vec![1.0f32; 5]);
    }
}
