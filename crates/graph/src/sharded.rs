//! Sharded CSR: vertex-range shards behind [`GraphView`]/[`WeightedView`],
//! built one shard at a time for ~1/S peak build memory and optionally
//! spilled to per-shard `.pgcs` snapshots.
//!
//! One flat CSR caps everything at a single contiguous allocation: peak
//! build memory, NUMA placement, and any future multi-process story. A
//! [`ShardedCsr`] splits the vertex id space into `S` contiguous ranges
//! (arc-balanced, so every shard owns roughly `2m/S` arcs). Each shard
//! stores:
//!
//! * a **local CSR** — an independent [`CompactCsr`] over shard-local ids
//!   holding only intra-shard arcs (symmetric on its own, so the ordinary
//!   CSR invariants, validators, and the snapshot format all apply
//!   unchanged), plus its neighbor-parallel weights, and
//! * a **halo** — a small CSR of cross-shard arcs keyed by the shard's own
//!   vertices, neighbors kept as *global* ids. Every cross-shard edge
//!   `{u, v}` contributes the arc `u → v` to `u`'s shard halo and `v → u`
//!   to `v`'s — so shard-parallel round loops (JP color exchange, peel
//!   frontiers) read remote state only through the halo.
//!
//! `neighbors(v)` chains halo-below · local · halo-above, so the merged
//! stream is globally sorted and the whole algorithm stack runs on a
//! `ShardedCsr` unchanged — and bit-identically, because adjacency
//! *content* is equal to the monolithic build's.
//!
//! ## Building and spilling
//!
//! [`build_sharded`] extends the two-pass streaming engine
//! ([`crate::stream`]) with `S + 2` replays of the source: one global
//! degree count (discovers `n`, picks arc-balanced boundaries), one
//! intra/halo degree count against those boundaries, then **one scatter
//! replay per shard** — so only a single shard's scatter arrays are ever
//! live at once and peak build memory is `O(n + 2m/S + halo)` instead of
//! `O(n + 2m)`. With [`ShardOptions::spill_dir`] set, each finished shard
//! is serialized to `shard-NNNN.pgcs`, dropped, and `mmap`-reopened
//! ([`MappedSnapshot`]), so even the *finished* local CSRs live in the
//! page cache rather than the heap; halos always stay resident. One
//! [`Peak`](crate::stream) ledger threads through every phase, so
//! [`BuildStats::build_bytes_peak`] reports the true high-water mark
//! across shards (a max, never a sum).

use crate::compact::CompactCsr;
use crate::snapshot::{write_weighted_snapshot, MappedSnapshot, SNAPSHOT_EXT};
use crate::stream::{as_atomic_u32s, grow_counts, BuildStats, EdgeSource, Peak, SharedMut};
use crate::view::{GraphMemory, GraphView, WeightedView};
use crate::weight::EdgeWeight;
use crate::weighted::WeightedCsr;
use pgc_par::for_each_chunk;
use pgc_primitives::{co_sort_by_key, offsets_from_counts, reduce_sum_u64};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// How to shard a streaming build.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Number of vertex-range shards (clamped to at least 1; shards may
    /// come out empty on tiny or skewed graphs).
    pub num_shards: usize,
    /// When set, each finished shard's local CSR is written to
    /// `<dir>/shard-NNNN.pgcs`, dropped from the heap, and mmap-reopened;
    /// the directory is created if missing. `None` keeps shards resident.
    pub spill_dir: Option<PathBuf>,
}

impl ShardOptions {
    /// Resident sharding with `num_shards` shards.
    pub fn resident(num_shards: usize) -> Self {
        Self {
            num_shards,
            spill_dir: None,
        }
    }

    /// Spill-mode sharding: shards snapshot to `dir` and serve via mmap.
    pub fn spilling(num_shards: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            num_shards,
            spill_dir: Some(dir.into()),
        }
    }
}

/// Cross-shard arcs of one shard: a CSR keyed by the shard's local ids
/// whose neighbor entries are **global** ids outside the shard's range,
/// sorted ascending (weights neighbor-parallel).
struct Halo<W: EdgeWeight> {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<W>,
}

impl<W: EdgeWeight> Halo<W> {
    #[inline]
    fn arc_range(&self, lv: u32) -> std::ops::Range<usize> {
        self.offsets[lv as usize]..self.offsets[lv as usize + 1]
    }

    #[inline]
    fn neighbors(&self, lv: u32) -> &[u32] {
        &self.neighbors[self.arc_range(lv)]
    }

    #[inline]
    fn weights(&self, lv: u32) -> &[W] {
        &self.weights[self.arc_range(lv)]
    }

    fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * 4
            + self.weights.len() * std::mem::size_of::<W>()
    }
}

/// Where one shard's local CSR lives.
enum ShardStore<W: EdgeWeight> {
    /// Owned in-heap arrays, as the builder produced them.
    Resident { csr: CompactCsr, weights: Vec<W> },
    /// Serialized to a `.pgcs` snapshot and served via mmap.
    Spilled {
        snap: MappedSnapshot<W>,
        #[allow(dead_code)] // retained so diagnostics can name the file
        path: PathBuf,
    },
}

struct Shard<W: EdgeWeight> {
    store: ShardStore<W>,
    halo: Halo<W>,
}

impl<W: EdgeWeight> Shard<W> {
    #[inline]
    fn local_neighbors(&self, lv: u32) -> &[u32] {
        match &self.store {
            ShardStore::Resident { csr, .. } => csr.neighbors(lv),
            ShardStore::Spilled { snap, .. } => snap.neighbor_slice(lv),
        }
    }

    #[inline]
    fn local_weights(&self, lv: u32) -> &[W] {
        match &self.store {
            ShardStore::Resident { csr, weights } => &weights[csr.arc_range(lv)],
            ShardStore::Spilled { snap, .. } => snap.weight_slice(lv),
        }
    }
}

/// A graph split into vertex-range shards — each an independent local
/// [`CompactCsr`] (or spilled snapshot) plus a cross-shard halo — exposed
/// whole through [`GraphView`]/[`WeightedView`]. See the module docs for
/// the layout and [`build_sharded`] for construction.
pub struct ShardedCsr<W: EdgeWeight = ()> {
    /// `num_shards + 1` non-decreasing vertex ids; shard `s` owns
    /// `boundaries[s]..boundaries[s + 1]`.
    boundaries: Vec<u32>,
    shards: Vec<Shard<W>>,
    num_arcs: usize,
    halo_arcs: usize,
    max_deg: u32,
    min_deg: u32,
}

impl<W: EdgeWeight> ShardedCsr<W> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The `num_shards + 1` shard boundary ids (`boundaries[0] == 0`,
    /// `boundaries[num_shards] == n`).
    pub fn boundaries(&self) -> &[u32] {
        &self.boundaries
    }

    /// The shard owning vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: u32) -> usize {
        debug_assert!((v as usize) < self.n());
        self.boundaries.partition_point(|&b| b <= v) - 1
    }

    /// Vertex range of shard `s`.
    #[inline]
    pub fn shard_range(&self, s: usize) -> std::ops::Range<u32> {
        self.boundaries[s]..self.boundaries[s + 1]
    }

    /// Total cross-shard arcs across all halos (each cross-shard edge
    /// counts twice, once per endpoint's shard — the sharding's
    /// communication volume).
    pub fn halo_arcs(&self) -> usize {
        self.halo_arcs
    }

    /// Heap bytes held by the halo structures (offsets + neighbors +
    /// weights) — what spill mode cannot evict.
    pub fn halo_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.halo.heap_bytes()).sum()
    }

    /// True when shard `s`'s local CSR is snapshot-backed (spill mode).
    pub fn is_spilled(&self, s: usize) -> bool {
        matches!(self.shards[s].store, ShardStore::Spilled { .. })
    }

    #[inline]
    fn locate(&self, v: u32) -> (&Shard<W>, u32) {
        let s = self.shard_of(v);
        (&self.shards[s], v - self.boundaries[s])
    }

    /// Copy into a monolithic [`CompactCsr`] (merges local + halo arcs).
    pub fn to_compact(&self) -> CompactCsr {
        let n = self.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for v in 0..n as u32 {
            acc += self.degree(v) as usize;
            offsets.push(acc);
        }
        let mut neighbors = Vec::with_capacity(acc);
        for v in 0..n as u32 {
            neighbors.extend(self.neighbors(v));
        }
        CompactCsr::from_raw(offsets, neighbors)
    }
}

/// Merged neighbor stream of one vertex: halo-below, then local
/// (re-based to global ids), then halo-above — globally ascending because
/// each segment is sorted and their id ranges are disjoint and ordered.
pub struct ShardedNeighbors<'a> {
    pre: std::slice::Iter<'a, u32>,
    local: std::slice::Iter<'a, u32>,
    post: std::slice::Iter<'a, u32>,
    base: u32,
}

impl Iterator for ShardedNeighbors<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if let Some(&u) = self.pre.next() {
            return Some(u);
        }
        if let Some(&lu) = self.local.next() {
            return Some(lu + self.base);
        }
        self.post.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = self.pre.len() + self.local.len() + self.post.len();
        (len, Some(len))
    }
}

impl ExactSizeIterator for ShardedNeighbors<'_> {}

/// Weighted sibling of [`ShardedNeighbors`]: the same three segments with
/// their neighbor-parallel weight slices.
pub struct ShardedWeightedNeighbors<'a, W: EdgeWeight> {
    segs: [(&'a [u32], &'a [W]); 3],
    /// Added to segment 1's (the local segment's) ids; 0 for the halos.
    base: u32,
    seg: usize,
    i: usize,
}

impl<W: EdgeWeight> Iterator for ShardedWeightedNeighbors<'_, W> {
    type Item = (u32, W);

    #[inline]
    fn next(&mut self) -> Option<(u32, W)> {
        while self.seg < 3 {
            let (nbrs, wts) = self.segs[self.seg];
            if self.i < nbrs.len() {
                let shift = if self.seg == 1 { self.base } else { 0 };
                let out = (nbrs[self.i] + shift, wts[self.i]);
                self.i += 1;
                return Some(out);
            }
            self.seg += 1;
            self.i = 0;
        }
        None
    }
}

impl<W: EdgeWeight> GraphView for ShardedCsr<W> {
    type Neighbors<'a> = ShardedNeighbors<'a>;

    #[inline]
    fn n(&self) -> usize {
        *self.boundaries.last().unwrap() as usize
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    #[inline]
    fn degree(&self, v: u32) -> u32 {
        let (shard, lv) = self.locate(v);
        (shard.local_neighbors(lv).len() + shard.halo.arc_range(lv).len()) as u32
    }

    #[inline]
    fn neighbors(&self, v: u32) -> ShardedNeighbors<'_> {
        let s = self.shard_of(v);
        let base = self.boundaries[s];
        let shard = &self.shards[s];
        let lv = v - base;
        let halo = shard.halo.neighbors(lv);
        let split = halo.partition_point(|&u| u < base);
        ShardedNeighbors {
            pre: halo[..split].iter(),
            local: shard.local_neighbors(lv).iter(),
            post: halo[split..].iter(),
            base,
        }
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.max_deg
    }

    #[inline]
    fn min_degree(&self) -> u32 {
        self.min_deg
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        let s = self.shard_of(u);
        let base = self.boundaries[s];
        let shard = &self.shards[s];
        if v >= base && v < self.boundaries[s + 1] {
            shard
                .local_neighbors(u - base)
                .binary_search(&(v - base))
                .is_ok()
        } else {
            shard.halo.neighbors(u - base).binary_search(&v).is_ok()
        }
    }

    fn memory_footprint(&self) -> GraphMemory {
        let mut offset_count = 0usize;
        let mut offset_bytes = 0usize;
        let mut aux = self.boundaries.len() * 4;
        for (s, shard) in self.shards.iter().enumerate() {
            let sn = self.shard_range(s).len();
            let width = match &shard.store {
                ShardStore::Resident { csr, .. } => csr.offset_width(),
                ShardStore::Spilled { snap, .. } => snap.memory_footprint().offset_width,
            };
            offset_count += sn + 1;
            offset_bytes += (sn + 1) * width;
            aux += shard.halo.offsets.len() * std::mem::size_of::<usize>();
        }
        // One GraphMemory carries a single offset width; report the mix
        // at its average width so offset_bytes() stays exact.
        GraphMemory {
            offset_width: if offset_count == 0 {
                4
            } else {
                offset_bytes.div_ceil(offset_count)
            },
            offset_count,
            neighbor_width: 4,
            neighbor_count: self.num_arcs,
            encoded_bytes: 0,
            encoded_mapped_bytes: 0,
            aux_bytes: aux,
            weight_bytes: self.num_arcs * std::mem::size_of::<W>(),
        }
    }
}

impl<W: EdgeWeight> WeightedView for ShardedCsr<W> {
    type Weight = W;
    type WeightedNeighbors<'a> = ShardedWeightedNeighbors<'a, W>;

    #[inline]
    fn weighted_neighbors(&self, v: u32) -> ShardedWeightedNeighbors<'_, W> {
        let s = self.shard_of(v);
        let base = self.boundaries[s];
        let shard = &self.shards[s];
        let lv = v - base;
        let halo_n = shard.halo.neighbors(lv);
        let halo_w = shard.halo.weights(lv);
        let split = halo_n.partition_point(|&u| u < base);
        ShardedWeightedNeighbors {
            segs: [
                (&halo_n[..split], &halo_w[..split]),
                (shard.local_neighbors(lv), shard.local_weights(lv)),
                (&halo_n[split..], &halo_w[split..]),
            ],
            base,
            seg: 0,
            i: 0,
        }
    }
}

// ---------------------------------------------------------------------
// The shard-aware streaming builder
// ---------------------------------------------------------------------

/// Build an unweighted [`ShardedCsr`] (see [`build_sharded_with_stats`]).
pub fn build_sharded<S: EdgeSource + ?Sized>(
    src: &S,
    opts: &ShardOptions,
) -> io::Result<ShardedCsr> {
    build_sharded_with_stats(src, opts).map(|(g, _)| g)
}

/// Build a [`ShardedCsr`] through the shard-aware two-pass engine:
/// `S + 2` deterministic replays (global count → intra/halo count → one
/// scatter per shard), peak memory `O(n + 2m/S + halo)`, adjacency
/// content bit-identical to the monolithic [`crate::stream::build_compact`]
/// of the same source. Weighted sibling: [`build_sharded_weighted_with_stats`].
pub fn build_sharded_with_stats<S: EdgeSource + ?Sized>(
    src: &S,
    opts: &ShardOptions,
) -> io::Result<(ShardedCsr, BuildStats)> {
    build_raw_sharded::<(), S>(src, opts)
}

/// Weighted sibling of [`build_sharded`].
pub fn build_sharded_weighted<W: EdgeWeight, S: EdgeSource<W> + ?Sized>(
    src: &S,
    opts: &ShardOptions,
) -> io::Result<ShardedCsr<W>> {
    build_raw_sharded::<W, S>(src, opts).map(|(g, _)| g)
}

/// Weighted sibling of [`build_sharded_with_stats`]: weights scatter into
/// the per-shard local and halo arrays through the same cursors and
/// duplicate arcs keep the max, exactly as in the monolithic engine.
pub fn build_sharded_weighted_with_stats<W: EdgeWeight, S: EdgeSource<W> + ?Sized>(
    src: &S,
    opts: &ShardOptions,
) -> io::Result<(ShardedCsr<W>, BuildStats)> {
    build_raw_sharded::<W, S>(src, opts)
}

/// Arc-balanced shard boundaries: walk the degree prefix sum, closing a
/// shard as soon as it reaches its proportional share of the arc total.
/// Degenerates to an even vertex split on arc-free inputs. Deterministic
/// in the counts alone, so every replay-identical source shards the same.
fn arc_balanced_boundaries(counts: &[u32], total: usize, num_shards: usize) -> Vec<u32> {
    let n = counts.len();
    let s = num_shards.max(1);
    let mut bounds = Vec::with_capacity(s + 1);
    bounds.push(0u32);
    if total == 0 {
        for j in 1..s {
            bounds.push((n * j / s) as u32);
        }
    } else {
        let mut acc = 0u64;
        let mut j = 1usize;
        for (v, &c) in counts.iter().enumerate() {
            acc += c as u64;
            while j < s && acc * s as u64 >= j as u64 * total as u64 {
                bounds.push(v as u32 + 1);
                j += 1;
            }
        }
        while bounds.len() < s {
            bounds.push(n as u32);
        }
    }
    bounds.push(n as u32);
    bounds
}

/// Sort each CSR list in place (weights co-permuted), dedup keeping the
/// max weight, and compact only if duplicates were dropped — the sharded
/// sibling of the monolithic sort/dedup/compact phase, with identical
/// semantics so sharded adjacency content matches the monolithic build
/// bit for bit. On return the net `peak` charge equals the returned
/// arrays' bytes.
#[allow(clippy::type_complexity)]
fn finish_lists<W: EdgeWeight>(
    offsets: Vec<usize>,
    mut neighbors: Vec<u32>,
    mut weights: Vec<W>,
    peak: &mut Peak,
) -> (Vec<usize>, Vec<u32>, Vec<W>) {
    let n = offsets.len() - 1;
    let total = neighbors.len();
    let wweight = std::mem::size_of::<W>();
    let mut deduped: Vec<u32> = vec![0; n];
    peak.alloc(n * 4);
    {
        let nb = SharedMut(neighbors.as_mut_ptr());
        let ws = SharedMut(weights.as_mut_ptr());
        let dd = SharedMut(deduped.as_mut_ptr());
        let offsets = &offsets;
        for_each_chunk(n, |range| {
            let mut scratch: Vec<(u32, W)> = Vec::new();
            for v in range {
                let (lo, hi) = (offsets[v], offsets[v + 1]);
                // SAFETY: CSR ranges of distinct vertices are disjoint,
                // and `for_each_chunk` hands out disjoint vertex ranges.
                let list = unsafe { nb.slice(lo, hi) };
                let mut out = 0usize;
                if W::IS_UNIT {
                    list.sort_unstable();
                    for i in 0..list.len() {
                        if i == 0 || list[i] != list[i - 1] {
                            list[out] = list[i];
                            out += 1;
                        }
                    }
                } else {
                    // SAFETY: same disjoint vertex range as `list`.
                    let wl = unsafe { ws.slice(lo, hi) };
                    co_sort_by_key(list, wl, &mut scratch);
                    for i in 0..list.len() {
                        if out == 0 || list[i] != list[out - 1] {
                            list[out] = list[i];
                            wl[out] = wl[i];
                            out += 1;
                        } else {
                            wl[out - 1] = wl[out - 1].merge_parallel(wl[i]);
                        }
                    }
                }
                // SAFETY: one writer per vertex slot.
                unsafe { dd.write(v, out as u32) };
            }
        });
    }
    let kept = reduce_sum_u64(&deduped, |&d| d as u64) as usize;
    if kept == total {
        peak.free(n * 4);
        return (offsets, neighbors, weights);
    }

    let (fin_offsets, sum) = offsets_from_counts::<usize>(&deduped);
    debug_assert_eq!(sum, kept);
    peak.alloc((n + 1) * std::mem::size_of::<usize>());
    let mut fin: Vec<u32> = vec![0; kept];
    peak.alloc(kept * 4);
    let mut fin_weights: Vec<W> = vec![W::default(); kept];
    peak.alloc(kept * wweight);
    {
        let fb = SharedMut(fin.as_mut_ptr());
        let fw = SharedMut(fin_weights.as_mut_ptr());
        let (offsets, fin_offsets) = (&offsets, &fin_offsets);
        for_each_chunk(n, |range| {
            for v in range {
                let src_lo = offsets[v];
                let d = deduped[v] as usize;
                let dst_lo = fin_offsets[v];
                // SAFETY: destination ranges of distinct vertices are
                // disjoint.
                unsafe { fb.slice(dst_lo, dst_lo + d) }
                    .copy_from_slice(&neighbors[src_lo..src_lo + d]);
                if !W::IS_UNIT {
                    // SAFETY: same disjoint destination ranges.
                    unsafe { fw.slice(dst_lo, dst_lo + d) }
                        .copy_from_slice(&weights[src_lo..src_lo + d]);
                }
            }
        });
    }
    peak.free(n * 4); // deduped
    peak.free((n + 1) * std::mem::size_of::<usize>()); // scatter offsets
    peak.free(total * 4); // scatter neighbors
    peak.free(total * wweight); // scatter weights
    (fin_offsets, fin, fin_weights)
}

fn diverged_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        "EdgeSource replay diverged between the count and scatter passes",
    )
}

fn build_raw_sharded<W: EdgeWeight, S: EdgeSource<W> + ?Sized>(
    src: &S,
    opts: &ShardOptions,
) -> io::Result<(ShardedCsr<W>, BuildStats)> {
    let t0 = Instant::now();
    let wweight = std::mem::size_of::<W>();
    let usize_w = std::mem::size_of::<usize>();
    let mut peak = Peak::default();
    peak.alloc(src.buffered_bytes());
    if let Some(dir) = &opts.spill_dir {
        std::fs::create_dir_all(dir)?;
    }

    // ---- replay 1: global degree count (discovers n, picks bounds) ---
    let count_span = pgc_obs::span!("ingest.count");
    let declared = src.num_vertices();
    let mut counts: Vec<u32> = vec![0; declared];
    peak.alloc(counts.capacity() * 4);
    let mut n = declared;
    let mut raw_edges = 0usize;
    let mut malformed = false;
    src.replay(&mut |chunk, wchunk| {
        raw_edges += chunk.len();
        if !W::IS_UNIT && wchunk.len() != chunk.len() {
            malformed = true;
            return;
        }
        if let Some(mx) = chunk.iter().map(|&(u, v)| u.max(v)).max() {
            let need = mx as usize + 1;
            n = n.max(need);
            if counts.len() < need {
                grow_counts(&mut counts, need, &mut peak);
            }
        }
        let counts = as_atomic_u32s(&mut counts);
        for_each_chunk(chunk.len(), |r| {
            for &(u, v) in &chunk[r] {
                if u != v {
                    counts[u as usize].fetch_add(1, Ordering::Relaxed);
                    counts[v as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    })?;
    if malformed {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "weighted EdgeSource emitted a weights chunk shorter or longer than its pair chunk",
        ));
    }
    counts.truncate(n);
    let total = reduce_sum_u64(&counts, |&c| c as u64) as usize;
    let boundaries = arc_balanced_boundaries(&counts, total, opts.num_shards);
    let counts_bytes = counts.capacity() * 4;
    drop(counts);
    peak.free(counts_bytes);
    drop(count_span);

    // ---- replay 2: intra/halo degree split against the boundaries ----
    let split_span = pgc_obs::span!("ingest.shard_count");
    let num_shards = boundaries.len() - 1;
    let mut intra: Vec<u32> = vec![0; n];
    let mut halo_cnt: Vec<u32> = vec![0; n];
    peak.alloc(2 * n * 4);
    let diverged = AtomicBool::new(false);
    {
        let intra_at = as_atomic_u32s(&mut intra);
        let halo_at = as_atomic_u32s(&mut halo_cnt);
        let (boundaries, diverged) = (&boundaries, &diverged);
        src.replay(&mut |chunk, _| {
            for_each_chunk(chunk.len(), |r| {
                for &(u, v) in &chunk[r] {
                    if u == v {
                        continue;
                    }
                    let (ui, vi) = (u as usize, v as usize);
                    if ui >= n || vi >= n {
                        diverged.store(true, Ordering::Relaxed);
                        continue;
                    }
                    let same = boundaries.partition_point(|&b| b <= u)
                        == boundaries.partition_point(|&b| b <= v);
                    let tgt = if same { &intra_at } else { &halo_at };
                    tgt[ui].fetch_add(1, Ordering::Relaxed);
                    tgt[vi].fetch_add(1, Ordering::Relaxed);
                }
            });
        })?;
    }
    if diverged.load(Ordering::Relaxed) {
        return Err(diverged_err());
    }
    drop(split_span);

    // ---- one scatter replay per shard -------------------------------
    let mut shards: Vec<Shard<W>> = Vec::with_capacity(num_shards);
    let mut num_arcs = 0usize;
    let mut halo_arcs = 0usize;
    let (mut max_deg, mut min_deg) = (0u32, u32::MAX);
    for s in 0..num_shards {
        let _shard_span = pgc_obs::span!("build.shard");
        let (base, end) = (boundaries[s], boundaries[s + 1]);
        let sn = (end - base) as usize;
        let (loc_offsets, loc_total) =
            offsets_from_counts::<usize>(&intra[base as usize..end as usize]);
        let (halo_offsets, halo_total) =
            offsets_from_counts::<usize>(&halo_cnt[base as usize..end as usize]);
        peak.alloc(2 * (sn + 1) * usize_w);

        let loc_cur: Vec<AtomicUsize> = loc_offsets[..sn]
            .iter()
            .map(|&o| AtomicUsize::new(o))
            .collect();
        let halo_cur: Vec<AtomicUsize> = halo_offsets[..sn]
            .iter()
            .map(|&o| AtomicUsize::new(o))
            .collect();
        peak.alloc(2 * sn * usize_w);
        let mut loc_nbrs: Vec<u32> = vec![0; loc_total];
        let mut halo_nbrs: Vec<u32> = vec![0; halo_total];
        peak.alloc((loc_total + halo_total) * 4);
        let mut loc_wts: Vec<W> = vec![W::default(); loc_total];
        let mut halo_wts: Vec<W> = vec![W::default(); halo_total];
        peak.alloc((loc_total + halo_total) * wweight);
        {
            let loc_slots = as_atomic_u32s(&mut loc_nbrs);
            let halo_slots = as_atomic_u32s(&mut halo_nbrs);
            let loc_w = SharedMut(loc_wts.as_mut_ptr());
            let halo_w = SharedMut(halo_wts.as_mut_ptr());
            let (loc_cur, halo_cur, diverged) = (&loc_cur, &halo_cur, &diverged);
            src.replay(&mut |chunk, wchunk| {
                if !W::IS_UNIT && wchunk.len() != chunk.len() {
                    diverged.store(true, Ordering::Relaxed);
                    return;
                }
                let (loc_w, halo_w) = (&loc_w, &halo_w);
                for_each_chunk(chunk.len(), |r| {
                    for i in r {
                        let (u, v) = chunk[i];
                        if u == v {
                            continue;
                        }
                        if u as usize >= n || v as usize >= n {
                            diverged.store(true, Ordering::Relaxed);
                            continue;
                        }
                        let u_in = u >= base && u < end;
                        let v_in = v >= base && v < end;
                        if u_in && v_in {
                            let su = loc_cur[(u - base) as usize].fetch_add(1, Ordering::Relaxed);
                            let sv = loc_cur[(v - base) as usize].fetch_add(1, Ordering::Relaxed);
                            if su >= loc_total || sv >= loc_total {
                                diverged.store(true, Ordering::Relaxed);
                                continue;
                            }
                            loc_slots[su].store(v - base, Ordering::Relaxed);
                            loc_slots[sv].store(u - base, Ordering::Relaxed);
                            if !W::IS_UNIT {
                                // SAFETY: slots claimed by this iteration's
                                // unique cursor bumps.
                                unsafe {
                                    loc_w.write(su, wchunk[i]);
                                    loc_w.write(sv, wchunk[i]);
                                }
                            }
                        } else if u_in || v_in {
                            let (own, other) = if u_in { (u, v) } else { (v, u) };
                            let so =
                                halo_cur[(own - base) as usize].fetch_add(1, Ordering::Relaxed);
                            if so >= halo_total {
                                diverged.store(true, Ordering::Relaxed);
                                continue;
                            }
                            halo_slots[so].store(other, Ordering::Relaxed);
                            if !W::IS_UNIT {
                                // SAFETY: slot claimed by this iteration's
                                // unique cursor bump.
                                unsafe { halo_w.write(so, wchunk[i]) };
                            }
                        }
                    }
                });
            })?;
        }
        let cursors_short = (0..sn).any(|lv| {
            loc_cur[lv].load(Ordering::Relaxed) != loc_offsets[lv + 1]
                || halo_cur[lv].load(Ordering::Relaxed) != halo_offsets[lv + 1]
        });
        if diverged.load(Ordering::Relaxed) || cursors_short {
            return Err(diverged_err());
        }
        drop(loc_cur);
        drop(halo_cur);
        peak.free(2 * sn * usize_w);

        let (loc_offsets, loc_nbrs, loc_wts) =
            finish_lists(loc_offsets, loc_nbrs, loc_wts, &mut peak);
        let (halo_offsets, halo_nbrs, halo_wts) =
            finish_lists(halo_offsets, halo_nbrs, halo_wts, &mut peak);
        let (loc_kept, halo_kept) = (loc_nbrs.len(), halo_nbrs.len());
        num_arcs += loc_kept + halo_kept;
        halo_arcs += halo_kept;
        for lv in 0..sn {
            let d = (loc_offsets[lv + 1] - loc_offsets[lv] + halo_offsets[lv + 1]
                - halo_offsets[lv]) as u32;
            max_deg = max_deg.max(d);
            min_deg = min_deg.min(d);
        }

        // Pack the local CSR (from_raw narrows the offsets to u32 when
        // the arc count permits — charge the transient coexistence).
        let csr = CompactCsr::from_raw(loc_offsets, loc_nbrs);
        let new_off_bytes = (sn + 1) * csr.offset_width();
        if new_off_bytes != (sn + 1) * usize_w {
            peak.alloc(new_off_bytes);
            peak.free((sn + 1) * usize_w);
        }

        let store = if let Some(dir) = &opts.spill_dir {
            let path = dir.join(format!("shard-{s:04}.{SNAPSHOT_EXT}"));
            let wcsr = WeightedCsr::from_parts(csr, loc_wts);
            write_weighted_snapshot(&wcsr, &path)?;
            drop(wcsr);
            // The shard's finished arrays leave the heap; the mmap that
            // replaces them is page-cache-backed, not build memory.
            peak.free(new_off_bytes + loc_kept * 4 + loc_kept * wweight);
            let snap = MappedSnapshot::<W>::open(&path)?;
            ShardStore::Spilled { snap, path }
        } else {
            ShardStore::Resident {
                csr,
                weights: loc_wts,
            }
        };
        shards.push(Shard {
            store,
            halo: Halo {
                offsets: halo_offsets,
                neighbors: halo_nbrs,
                weights: halo_wts,
            },
        });
    }
    drop(intra);
    drop(halo_cnt);
    peak.free(2 * n * 4);
    if n == 0 {
        min_deg = 0;
    }

    let g = ShardedCsr {
        boundaries,
        shards,
        num_arcs,
        halo_arcs,
        max_deg,
        min_deg: if min_deg == u32::MAX { 0 } else { min_deg },
    };
    let stats = BuildStats {
        ingest: t0.elapsed(),
        build_bytes_peak: peak.high_water(),
        raw_edges,
        hinted_edges: src.edge_hint(),
        raw_arcs: total,
        arcs: num_arcs,
        weight_width: wweight,
    };
    Ok((g, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GraphSpec, SpecSource};
    use crate::stream::build_compact;

    fn spec() -> GraphSpec {
        GraphSpec::ErdosRenyi { n: 300, m: 1500 }
    }

    fn check_equiv(g: &ShardedCsr, mono: &CompactCsr) {
        assert_eq!(g.n(), mono.n());
        assert_eq!(g.num_arcs(), mono.num_arcs());
        assert_eq!(GraphView::max_degree(g), mono.max_degree());
        assert_eq!(GraphView::min_degree(g), mono.min_degree());
        for v in mono.vertices() {
            assert_eq!(g.degree(v), mono.degree(v), "degree of {v}");
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                mono.neighbors(v),
                "adjacency of {v}"
            );
        }
    }

    #[test]
    fn sharded_matches_monolithic_across_shard_counts() {
        let src = SpecSource::new(spec(), 11);
        let mono = build_compact(&src).unwrap();
        for s in [1, 2, 3, 7, 64] {
            let g = build_sharded(&src, &ShardOptions::resident(s)).unwrap();
            assert_eq!(g.num_shards(), s);
            check_equiv(&g, &mono);
        }
    }

    #[test]
    fn one_shard_has_empty_halo() {
        let src = SpecSource::new(spec(), 3);
        let g = build_sharded(&src, &ShardOptions::resident(1)).unwrap();
        assert_eq!(g.halo_arcs(), 0);
        assert_eq!(g.boundaries(), &[0, g.n() as u32]);
        assert_eq!(g.to_compact(), build_compact(&src).unwrap());
    }

    #[test]
    fn halo_holds_every_cross_shard_arc() {
        let src = SpecSource::new(spec(), 5);
        let g = build_sharded(&src, &ShardOptions::resident(4)).unwrap();
        let mono = build_compact(&src).unwrap();
        let mut cross = 0usize;
        for v in mono.vertices() {
            for &u in mono.neighbors(v) {
                if g.shard_of(u) != g.shard_of(v) {
                    cross += 1;
                }
            }
        }
        assert_eq!(g.halo_arcs(), cross);
        assert!(g.halo_bytes() > 0);
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let src = SpecSource::new(spec(), 7);
        let g = build_sharded(&src, &ShardOptions::resident(5)).unwrap();
        for s in 0..g.num_shards() {
            for v in g.shard_range(s) {
                assert_eq!(g.shard_of(v), s);
            }
        }
    }

    #[test]
    fn weighted_sharded_matches_monolithic() {
        let spec = GraphSpec::ErdosRenyi { n: 200, m: 900 };
        let src = SpecSource::new(spec.clone(), 13);
        let mono: WeightedCsr<f32> = crate::stream::build_weighted(&src).unwrap();
        let g: ShardedCsr<f32> = build_sharded_weighted(&src, &ShardOptions::resident(3)).unwrap();
        for v in mono.vertices() {
            assert_eq!(
                g.weighted_neighbors(v).collect::<Vec<_>>(),
                mono.weighted_neighbors(v).collect::<Vec<_>>(),
                "weighted adjacency of {v}"
            );
        }
        assert_eq!(g.total_weight(), mono.total_weight());
    }

    #[test]
    fn spill_mode_round_trips() {
        let dir = std::env::temp_dir().join(format!("pgc-shard-spill-{}", std::process::id()));
        let src = SpecSource::new(spec(), 23);
        let g = build_sharded(&src, &ShardOptions::spilling(3, &dir)).unwrap();
        for s in 0..g.num_shards() {
            assert!(g.is_spilled(s));
        }
        check_equiv(&g, &build_compact(&src).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = generate(&GraphSpec::ErdosRenyi { n: 5, m: 0 }, 1);
        assert_eq!(g.num_arcs(), 0);
        let src = SpecSource::new(GraphSpec::ErdosRenyi { n: 5, m: 0 }, 1);
        let sh = build_sharded(&src, &ShardOptions::resident(3)).unwrap();
        assert_eq!(sh.n(), 5);
        assert_eq!(sh.num_arcs(), 0);
        assert_eq!(GraphView::min_degree(&sh), 0);
        let sh = build_sharded(&src, &ShardOptions::resident(9)).unwrap();
        assert_eq!(sh.n(), 5, "more shards than vertices");
    }

    #[test]
    fn boundaries_are_arc_balanced() {
        let counts = vec![2u32; 100];
        let b = arc_balanced_boundaries(&counts, 200, 4);
        assert_eq!(b, vec![0, 25, 50, 75, 100]);
        let empty = arc_balanced_boundaries(&[], 0, 3);
        assert_eq!(empty, vec![0, 0, 0, 0]);
    }
}
