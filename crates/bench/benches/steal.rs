//! Fork-heavy scheduler microbench: work-stealing deques vs the old
//! global mutex registry.
//!
//! Three workloads stress exactly what the Chase–Lev rewrite changed:
//! a dense `fib`-style fork tree (tens of thousands of tiny joins), an
//! uneven-leaf parallel-for (load balancing via steals), and a deep
//! join chain (the old `try_remove` O(queue) reclaim scan). The mutex
//! baseline below is a faithful miniature of the pre-rewrite pool — one
//! `Mutex<VecDeque>` of type-erased jobs, `rposition` reclaim scan,
//! helping waiters — minus parking (it spins/yields, which *favors* it).
//!
//! Like `tests/speedup.rs`, the ≥1.5× assertion self-skips on machines
//! with fewer than 4 cores; the measurements still run and print.

use std::time::{Duration, Instant};

const WORKERS: usize = 4;

/// Miniature of the old mutex-registry pool (PR 2..8 era).
mod mutex_registry {
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    #[derive(Clone, Copy)]
    struct JobRef {
        data: *const (),
        execute_fn: unsafe fn(*const ()),
    }
    unsafe impl Send for JobRef {}

    struct StackJob<F, R> {
        func: UnsafeCell<Option<F>>,
        result: UnsafeCell<Option<R>>,
        done: AtomicBool,
    }
    unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

    impl<F: FnOnce() -> R + Send, R: Send> StackJob<F, R> {
        unsafe fn execute(data: *const ()) {
            let job = unsafe { &*(data as *const Self) };
            let func = unsafe { (*job.func.get()).take().unwrap() };
            unsafe { *job.result.get() = Some(func()) };
            job.done.store(true, Ordering::Release);
        }
    }

    struct Registry {
        queue: Mutex<VecDeque<JobRef>>,
        work: Condvar,
    }

    fn registry() -> &'static Registry {
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(|| {
            for _ in 0..super::WORKERS {
                std::thread::spawn(|| {
                    let r = registry();
                    loop {
                        let job = {
                            let mut q = r.queue.lock().unwrap();
                            loop {
                                if let Some(j) = q.pop_front() {
                                    break j;
                                }
                                q = r.work.wait(q).unwrap();
                            }
                        };
                        unsafe { (job.execute_fn)(job.data) };
                    }
                });
            }
            Registry {
                queue: Mutex::new(VecDeque::new()),
                work: Condvar::new(),
            }
        })
    }

    /// The old reclaim path: scan the shared queue for our own job.
    fn try_remove(r: &Registry, job: JobRef) -> bool {
        let mut q = r.queue.lock().unwrap();
        if let Some(pos) = q.iter().rposition(|j| std::ptr::eq(j.data, job.data)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn join<A, RA, B, RB>(a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let r = registry();
        let job_b = StackJob {
            func: UnsafeCell::new(Some(b)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        };
        let job_ref = JobRef {
            data: &job_b as *const _ as *const (),
            execute_fn: StackJob::<B, RB>::execute,
        };
        r.queue.lock().unwrap().push_back(job_ref);
        r.work.notify_one();

        let ra = a();
        if try_remove(r, job_ref) {
            // SAFETY: removed from the queue — unique execution.
            unsafe { StackJob::<B, RB>::execute(job_ref.data) };
        } else {
            while !job_b.done.load(Ordering::Acquire) {
                // Help like the old pool did; spin-yield instead of
                // parking (cheaper than the old condvar for the bench).
                let stolen = r.queue.lock().unwrap().pop_front();
                match stolen {
                    Some(j) => unsafe { (j.execute_fn)(j.data) },
                    None => std::thread::yield_now(),
                }
            }
        }
        let rb = job_b.result.into_inner().unwrap();
        (ra, rb)
    }
}

/// The three workloads, stamped out once per scheduler so both run the
/// exact same task trees through their respective `join`.
macro_rules! workloads {
    ($join:path) => {
        /// Dense fork tree: tens of thousands of near-empty joins.
        pub fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = $join(|| fib(n - 1), || fib(n - 2));
            a + b
        }

        /// Uneven leaves: cost varies ~30× across the range, so good
        /// schedulers rebalance mid-loop.
        pub fn uneven_for(lo: usize, hi: usize) -> u64 {
            const GRAIN: usize = 32;
            if hi - lo <= GRAIN {
                let mut acc = 0u64;
                for i in lo..hi {
                    let cost = 20 + (i % 13) * (i % 47);
                    let mut x = i as u64 | 1;
                    for _ in 0..cost {
                        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(11);
                    }
                    acc = acc.wrapping_add(x);
                }
                return acc;
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = $join(|| uneven_for(lo, mid), || uneven_for(mid, hi));
            a.wrapping_add(b)
        }

        /// Deep chain: `depth` pending halves; the old registry paid an
        /// O(pending) scan per reclaim here.
        pub fn deep_chain(depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = $join(move || deep_chain(depth - 1), || 1u64);
            a + b
        }
    };
}

mod stealing {
    workloads!(pgc_par::join);
}
mod mutexed {
    workloads!(crate::mutex_registry::join);
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            criterion::black_box(f());
            t0.elapsed()
        })
        .min()
        .unwrap()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Expected results, computed once sequentially.
    let fib_expect = {
        fn f(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                f(n - 1) + f(n - 2)
            }
        }
        f(21)
    };
    let uneven_expect = mutexed::uneven_for(0, 40_000); // deterministic sum

    let reps = 3;
    let run_suite = |name: &str,
                     fib: &dyn Fn() -> u64,
                     uneven: &dyn Fn() -> u64,
                     deep: &dyn Fn() -> u64| {
        let t_fib = best_of(reps, || {
            assert_eq!(fib(), fib_expect);
        });
        let t_uneven = best_of(reps, || {
            assert_eq!(uneven(), uneven_expect);
        });
        let t_deep = best_of(reps, || {
            assert_eq!(deep(), 8_193);
        });
        let total = t_fib + t_uneven + t_deep;
        println!(
            "steal [{name}]: fib(21) {t_fib:?}, uneven-for(40k) {t_uneven:?}, deep-chain(8k) {t_deep:?}, total {total:?}"
        );
        total
    };

    // Warm both pools before timing (worker spawning is not scheduling).
    pgc_par::install(WORKERS, || stealing::fib(10));
    mutexed::fib(10);

    let t_mutex = run_suite(
        "mutex registry",
        &|| mutexed::fib(21),
        &|| mutexed::uneven_for(0, 40_000),
        &|| mutexed::deep_chain(8_192),
    );
    let t_steal = run_suite(
        "work stealing",
        &|| pgc_par::install(WORKERS, || stealing::fib(21)),
        &|| pgc_par::install(WORKERS, || stealing::uneven_for(0, 40_000)),
        &|| pgc_par::install(WORKERS, || stealing::deep_chain(8_192)),
    );

    let speedup = t_mutex.as_secs_f64() / t_steal.as_secs_f64();
    println!(
        "steal: work-stealing vs mutex registry at {WORKERS} workers: {speedup:.2}x ({} steals so far)",
        pgc_par::steal_count()
    );

    if cores < WORKERS {
        eprintln!(
            "steal: SKIP ≥1.5x assertion — {cores} core(s) available, needs ≥{WORKERS} (same policy as tests/speedup.rs)"
        );
        return;
    }
    assert!(
        speedup >= 1.5,
        "work-stealing scheduler must be ≥1.5x the mutex registry on fork-heavy work at {WORKERS} workers, got {speedup:.2}x"
    );
}
