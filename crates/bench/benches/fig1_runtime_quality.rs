//! Fig. 1 bench: end-to-end run time of every compared algorithm on a
//! scale-free and a clustered graph (the two regimes where the SC and JP
//! classes trade places in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgc_bench::{bench_graph_clustered, bench_graph_scale_free};
use pgc_core::{run, Algorithm, Params};
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    let params = Params::default();
    for (gname, g) in [
        ("rmat-13-8", bench_graph_scale_free()),
        ("ring-of-cliques", bench_graph_clustered()),
    ] {
        let mut group = c.benchmark_group(format!("fig1/{gname}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(300));
        for algo in Algorithm::fig1_set() {
            group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
                b.iter(|| black_box(run(&g, algo, &params).num_colors))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig1);
criterion_main!(benches);
