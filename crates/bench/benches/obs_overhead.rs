//! Pins the observability layer's zero-cost claim.
//!
//! Built from `cargo bench -p pgc-bench`, the dependency tree enables no
//! `pgc-obs` features (the workspace declares `default-features = false`
//! everywhere and only leaf binaries opt in), so this target measures the
//! **no-op** recorder: `span!`/`counter!` must compile to nothing. Built
//! as part of a full-workspace `cargo bench`, feature unification turns
//! `capture` on and the same code measures the recorder outside a
//! session, which must stay within one relaxed atomic load per event.
//!
//! Either way the bench *asserts* its bound (and that instrumenting a
//! coloring does not change its output) instead of just printing numbers,
//! so CI catches a regression.

use pgc_core::{run, Algorithm, Params};
use pgc_graph::gen::{generate, GraphSpec};
use std::time::Instant;

const OPS: u64 = 5_000_000;
const TRIALS: usize = 5;

/// Minimum per-op nanoseconds over a few trials (min de-noises CI).
fn per_op_ns(mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let sink = f();
        let elapsed = t0.elapsed().as_nanos() as f64;
        criterion::black_box(sink);
        best = best.min(elapsed / OPS as f64);
    }
    best
}

fn main() {
    let baseline = per_op_ns(|| {
        let mut acc = 0u64;
        for i in 0..OPS {
            acc = acc.wrapping_add(criterion::black_box(i));
        }
        acc
    });
    let instrumented = per_op_ns(|| {
        let mut acc = 0u64;
        for i in 0..OPS {
            let _span = pgc_obs::span!("bench.op");
            pgc_obs::counter!("bench.ops", 1);
            acc = acc.wrapping_add(criterion::black_box(i));
        }
        acc
    });
    let overhead = (instrumented - baseline).max(0.0);
    let mode = if pgc_obs::CAPTURE {
        "capture (session inactive)"
    } else {
        "no-op"
    };
    println!("obs_overhead [{mode}]: baseline {baseline:.3} ns/op, instrumented {instrumented:.3} ns/op, overhead {overhead:.3} ns/op");

    // The assertion the issue asks for: no-op macros have no measurable
    // cost; the compiled-in-but-inactive path is a couple of atomic loads.
    let bound = if pgc_obs::CAPTURE { 50.0 } else { 1.0 };
    assert!(
        overhead < bound,
        "recorder overhead {overhead:.3} ns/op exceeds the {bound} ns bound for the {mode} build"
    );

    // And the coloring is bit-identical whether or not events are being
    // recorded (in the no-op build session_begin itself is a no-op).
    let g = generate(
        &GraphSpec::BarabasiAlbert {
            n: 2_000,
            attach: 6,
        },
        42,
    );
    let params = Params::default();
    let quiet = run(&g, Algorithm::JpAdg, &params);
    pgc_obs::session_begin();
    let recorded = run(&g, Algorithm::JpAdg, &params);
    let trace = pgc_obs::session_end();
    assert_eq!(
        quiet.colors, recorded.colors,
        "recording a session changed the coloring"
    );
    assert_eq!(
        pgc_obs::CAPTURE,
        !trace.events.is_empty(),
        "capture build must record events; no-op build must record none"
    );
    println!(
        "obs_overhead: colorings bit-identical with recording {} ({} events)",
        if pgc_obs::CAPTURE {
            "on"
        } else {
            "compiled out"
        },
        trace.events.len()
    );

    // The scheduler counters (pool.steal / pool.steal_fail / pool.park /
    // pool.help) ride the same macros: in a no-`capture` build a fork-heavy
    // workload under an active session must record exactly nothing.
    pgc_obs::session_begin();
    fn fork_tree(depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = pgc_par::join(|| fork_tree(depth - 1), || fork_tree(depth - 1));
        a + b
    }
    let leaves = pgc_par::install(4, || fork_tree(10));
    let pool_trace = pgc_obs::session_end();
    assert_eq!(leaves, 1 << 10);
    for name in ["pool.steal", "pool.steal_fail", "pool.park", "pool.help"] {
        let total = pool_trace.counter_total(name);
        if pgc_obs::CAPTURE {
            println!("obs_overhead: {name} total {total}");
        } else {
            assert_eq!(total, 0, "{name} must be a no-op without `capture`");
        }
    }
    if !pgc_obs::CAPTURE {
        assert!(
            pool_trace.events.is_empty(),
            "scheduler instrumentation leaked {} events into a no-op build",
            pool_trace.events.len()
        );
    }
    // The always-on steal counter is independent of the obs feature: the
    // fork tree above forked thousands of times at width 4, so on any
    // multi-core box it is almost certainly non-zero — but all we can
    // assert portably is that it is readable and monotone.
    let s0 = pgc_par::steal_count();
    let s1 = pgc_par::steal_count();
    assert!(s1 >= s0, "steal_count must be monotonic");
    println!("obs_overhead: steal_count() = {s1}");
}
