//! Fig. 2 bench: strong scaling (thread sweep on a fixed graph) and weak
//! scaling (Kronecker graphs with growing edges/vertex).
//!
//! The strong-scaling sweep installs a `pgc-par`-backed pool per thread
//! count: `pool.install` scopes the parallel width, so every
//! `par_iter`/`join`/`scope` inside `run` actually fans out across that
//! many threads (widths beyond the machine's cores are still measured —
//! they just can't speed up further).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_bench::bench_graph_scale_free;
use pgc_core::{run, Algorithm, Params};
use pgc_graph::gen::{generate, GraphSpec};
use std::hint::black_box;

fn strong(c: &mut Criterion) {
    let params = Params::default();
    let g = bench_graph_scale_free();
    let mut group = c.benchmark_group("fig2/strong/JP-ADG");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                pool.install(|| {
                    let r = run(&g, Algorithm::JpAdg, &params);
                    assert_eq!(r.instr.threads, threads, "pool width must be installed");
                    black_box(r.num_colors)
                })
            })
        });
    }
    group.finish();
}

fn weak(c: &mut Criterion) {
    let params = Params::default();
    let mut group = c.benchmark_group("fig2/weak/JP-ADG");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for ef in [2usize, 8, 32] {
        let g = generate(
            &GraphSpec::Rmat {
                scale: 12,
                edge_factor: ef,
            },
            1,
        );
        group.throughput(Throughput::Elements(g.m() as u64));
        group.bench_function(BenchmarkId::from_parameter(ef), |b| {
            b.iter(|| black_box(run(&g, Algorithm::JpAdg, &params).num_colors))
        });
    }
    group.finish();
}

criterion_group!(benches, strong, weak);
criterion_main!(benches);
