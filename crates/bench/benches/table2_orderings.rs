//! Table II bench: cost of computing each vertex ordering (the
//! "reordering" fraction of the paper's run-time bars).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgc_bench::bench_graph_scale_free;
use pgc_order::{compute, AdgOptions, OrderingKind};
use std::hint::black_box;

fn orderings(c: &mut Criterion) {
    let g = bench_graph_scale_free();
    let mut group = c.benchmark_group("table2/orderings");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for kind in [
        OrderingKind::FirstFit,
        OrderingKind::Random,
        OrderingKind::LargestFirst,
        OrderingKind::LargestLogFirst,
        OrderingKind::SmallestLast,
        OrderingKind::SmallestLogLast,
        OrderingKind::ApproxSmallestLast,
        OrderingKind::Adg(AdgOptions::default()),
        OrderingKind::Adg(AdgOptions::median()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| black_box(compute(&g, &kind, 7).rho.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, orderings);
criterion_main!(benches);
