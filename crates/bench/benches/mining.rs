//! "ADG beyond coloring" bench: densest subgraph, coreness estimates, and
//! maximal-clique enumeration — the ADG-consumer workloads of the paper's
//! closing section.

use criterion::{criterion_group, criterion_main, Criterion};
use pgc_bench::bench_graph_social;
use std::hint::black_box;

fn mining(c: &mut Criterion) {
    let g = bench_graph_social();
    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("densest-subgraph", |b| {
        b.iter(|| black_box(pgc_mining::approx_densest_subgraph(&g, 0.1).density))
    });
    group.bench_function("approx-coreness", |b| {
        b.iter(|| black_box(pgc_mining::approx_coreness(&g, 0.1).len()))
    });
    group.bench_function("exact-degeneracy", |b| {
        b.iter(|| black_box(pgc_graph::degeneracy::degeneracy(&g).degeneracy))
    });
    group.bench_function("maximal-cliques", |b| {
        b.iter(|| black_box(pgc_mining::count_maximal_cliques(&g)))
    });
    group.finish();
}

criterion_group!(benches, mining);
criterion_main!(benches);
