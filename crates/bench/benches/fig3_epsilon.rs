//! Fig. 3 bench: the ε knob — reordering cost shrinks as ε grows (fewer
//! ADG iterations), for both JP-ADG and DEC-ADG-ITR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgc_bench::{bench_graph_mesh, bench_graph_scale_free};
use pgc_core::{run, Algorithm, Params};
use std::hint::black_box;

fn fig3(c: &mut Criterion) {
    for (gname, g) in [
        ("h-bai-like", bench_graph_scale_free()),
        ("v-usa-like", bench_graph_mesh()),
    ] {
        for algo in [Algorithm::JpAdg, Algorithm::DecAdgItr] {
            let mut group = c.benchmark_group(format!("fig3/{gname}/{}", algo.name()));
            group.sample_size(10);
            group.measurement_time(std::time::Duration::from_secs(2));
            group.warm_up_time(std::time::Duration::from_millis(300));
            for eps in [0.01f64, 0.1, 1.0] {
                let params = Params {
                    epsilon: eps,
                    ..Params::default()
                };
                group.bench_function(BenchmarkId::from_parameter(eps), |b| {
                    b.iter(|| black_box(run(&g, algo, &params).num_colors))
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, fig3);
criterion_main!(benches);
