//! Microbench for the shared sorted-set intersection kernel
//! (`pgc_primitives::intersect`): branch-lean merge on balanced inputs,
//! galloping on skewed ones, and the `MarkSet` membership oracle — the
//! primitives behind clique pivoting, distance-2 scans, and triangle
//! counting.
//!
//! Carries an in-bench regression assertion: on a heavily skewed size
//! ratio the adaptive kernel (which picks galloping) must stay ≥2× ahead
//! of a plain two-pointer merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_primitives::{intersect_count, intersect_sorted_into, MarkSet, SplitMix64};
use std::hint::black_box;

/// Sorted, duplicate-free random u32 set of the given size inside
/// `0..universe`.
fn sorted_set(len: usize, universe: u32, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let mut v: Vec<u32> = (0..len.max(1) * 2)
        .map(|_| (rng.next_u64() % universe as u64) as u32)
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

/// The straight two-pointer merge — the baseline the adaptive kernel must
/// beat on skewed inputs (same output contract as `intersect_sorted_into`).
fn merge_baseline(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect/ratio");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let universe = 8_000_000u32;
    for ratio in [1usize, 16, 256] {
        let small = sorted_set(2_000, universe, 7);
        let large = sorted_set(2_000 * ratio, universe, 11);
        group.throughput(Throughput::Elements((small.len() + large.len()) as u64));
        group.bench_function(BenchmarkId::new("adaptive", ratio), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                intersect_sorted_into(&small, &large, &mut out);
                black_box(out.len())
            })
        });
        group.bench_function(BenchmarkId::new("merge-baseline", ratio), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                merge_baseline(&small, &large, &mut out);
                black_box(out.len())
            })
        });
        group.bench_function(BenchmarkId::new("count", ratio), |b| {
            b.iter(|| black_box(intersect_count(&small, &large)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("intersect/markset");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let marked = sorted_set(10_000, 1_000_000, 3);
    let probes = sorted_set(100_000, 1_000_000, 5);
    group.bench_function("mark+count", |b| {
        let mut marks = MarkSet::new();
        b.iter(|| {
            marks.clear(1_000_000);
            marks.mark_all(&marked);
            black_box(marks.count_marked(probes.iter().copied()))
        })
    });
    group.finish();

    // Regression gate: on a 256:1 size ratio the adaptive kernel gallops
    // and must stay >=2x ahead of the two-pointer merge (min-of-reps on
    // both sides, so noise can only narrow by slowing the fast path's
    // best run — which is exactly what the gate is for).
    let small = sorted_set(2_000, universe, 7);
    let large = sorted_set(2_000 * 256, universe, 11);
    let mut a_out = Vec::new();
    let mut m_out = Vec::new();
    merge_baseline(&small, &large, &mut m_out);
    intersect_sorted_into(&small, &large, &mut a_out);
    assert_eq!(a_out, m_out, "kernel disagrees with the merge oracle");
    let min_secs = |f: &mut dyn FnMut()| -> f64 {
        (0..20)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t_adaptive = min_secs(&mut || {
        intersect_sorted_into(&small, &large, &mut a_out);
        black_box(a_out.len());
    });
    let t_merge = min_secs(&mut || {
        merge_baseline(&small, &large, &mut m_out);
        black_box(m_out.len());
    });
    assert!(
        t_merge >= 2.0 * t_adaptive,
        "galloping regressed on skewed input: merge {:.1} us vs adaptive {:.1} us ({:.1}x < 2x)",
        t_merge * 1e6,
        t_adaptive * 1e6,
        t_merge / t_adaptive
    );
}

criterion_group!(benches, intersect);
criterion_main!(benches);
