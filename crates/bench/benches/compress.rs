//! Compressed-graph bench: delta-varint codec throughput and the
//! traversal price of decoding adjacencies on the fly.
//!
//! Two groups. `compress/codec` measures the `CompactCsr` ⇄
//! `CompressedCsr` converters as byte throughput over the raw neighbor
//! array they replace. `compress/jp` runs the same JP coloring over both
//! representations through the identical generic engine, so the delta is
//! purely the block decoder in the traversal inner loop.
//!
//! Two in-bench gates ride along (same policy as `ingest.rs` /
//! `steal.rs`): the encoded arena must stay ≤ half the raw `u32`
//! neighbor bytes on the RMAT workload, and JP on the compressed
//! representation must stay within 2.5× of the compact run (min over
//! reps; skipped on starved single-core runners where the pool cannot
//! amortize the decode).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pgc_core::{run, Algorithm, Params};
use pgc_graph::gen::{generate, GraphSpec};
use pgc_graph::{CompactCsr, CompressedCsr};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn workload() -> CompactCsr {
    generate(
        &GraphSpec::Rmat {
            scale: 14,
            edge_factor: 8,
        },
        1,
    )
}

fn codec(c: &mut Criterion) {
    let g = workload();
    let z = CompressedCsr::from_compact(&g);
    let raw_neighbor_bytes = 2 * g.m() * std::mem::size_of::<u32>();

    let mut group = c.benchmark_group("compress/codec");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.throughput(Throughput::Bytes(raw_neighbor_bytes as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(CompressedCsr::from_compact(&g).encoded_bytes()))
    });
    group.bench_function("decode", |b| b.iter(|| black_box(z.to_compact().m())));
    group.finish();

    // Size gate: the arena must halve the neighbor bytes on the RMAT
    // proxy (the fig2 families are pinned harder in tests/compressed.rs).
    assert!(
        2 * z.encoded_bytes() <= raw_neighbor_bytes,
        "compressed arena too large: {} encoded vs {} raw neighbor bytes",
        z.encoded_bytes(),
        raw_neighbor_bytes
    );
}

fn jp_traversal(c: &mut Criterion) {
    let g = workload();
    let z = CompressedCsr::from_compact(&g);
    let params = Params::default();
    let algo = Algorithm::JpLlf;

    let mut group = c.benchmark_group("compress/jp-llf");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.throughput(Throughput::Elements(2 * g.m() as u64));
    group.bench_function("compact", |b| {
        b.iter(|| black_box(run(&g, algo, &params).num_colors))
    });
    group.bench_function("compressed", |b| {
        b.iter(|| black_box(run(&z, algo, &params).num_colors))
    });
    group.finish();

    // Identical engine, identical seed: the coloring itself must not
    // depend on the representation.
    let rc = run(&g, algo, &params);
    let rz = run(&z, algo, &params);
    assert_eq!(rc.colors, rz.colors, "representation changed the coloring");

    // Decode-overhead gate, min over reps so scheduler noise only ever
    // helps the slower side.
    let min_secs = |f: &mut dyn FnMut()| -> f64 {
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t_compact = min_secs(&mut || {
        black_box(run(&g, algo, &params).num_colors);
    });
    let t_compressed = min_secs(&mut || {
        black_box(run(&z, algo, &params).num_colors);
    });
    let ratio = t_compressed / t_compact.max(1e-9);
    println!(
        "compress: jp-llf compact {:.1} ms vs compressed {:.1} ms ({ratio:.2}x)",
        t_compact * 1e3,
        t_compressed * 1e3,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("compress: SKIP ≤2.5x assertion — {cores} core(s) available, needs ≥2");
        return;
    }
    assert!(
        ratio <= 2.5,
        "block decode too slow: JP on CompressedCsr is {ratio:.2}x the CompactCsr run (bound 2.5x)"
    );
}

criterion_group!(benches, codec, jp_traversal);
criterion_main!(benches);
