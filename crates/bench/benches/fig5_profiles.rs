//! Fig. 5 bench: Dolan–Moré performance-profile computation, plus the
//! small quality-matrix evaluation feeding it.

use criterion::{criterion_group, criterion_main, Criterion};
use pgc_core::{run, Algorithm, Params};
use pgc_graph::gen::{generate, suite};
use pgc_harness::profiles::performance_profiles;
use std::hint::black_box;

fn profile_computation(c: &mut Criterion) {
    // A large synthetic metric matrix: 1000 instances × 12 solvers.
    let names: Vec<String> = (0..12).map(|i| format!("s{i}")).collect();
    let values: Vec<Vec<f64>> = (0..1000)
        .map(|i| {
            (0..12)
                .map(|j| 10.0 + ((i * 31 + j * 7) % 13) as f64)
                .collect()
        })
        .collect();
    let taus: Vec<f64> = (0..50).map(|i| 1.0 + i as f64 * 0.02).collect();
    c.bench_function("fig5/profile-computation", |b| {
        b.iter(|| black_box(performance_profiles(&names, &values, &taus).len()))
    });
}

fn quality_matrix(c: &mut Criterion) {
    let params = Params::default();
    let graphs: Vec<_> = suite(0)
        .into_iter()
        .take(3)
        .map(|sg| generate(&sg.spec, 1))
        .collect();
    let algos = [Algorithm::JpR, Algorithm::JpAdg, Algorithm::DecAdgItr];
    c.bench_function("fig5/quality-matrix-3x3", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for g in &graphs {
                for &a in &algos {
                    total += run(g, a, &params).num_colors;
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, profile_computation, quality_matrix);
criterion_main!(benches);
