//! Sharded-graph benches: the build/traverse/color costs of the
//! vertex-range `ShardedCsr` against the monolithic `CompactCsr`.
//!
//! Three groups:
//!
//! * `shard/build` — the shard-aware two-pass builder (resident and
//!   spill-to-snapshot modes) vs the monolithic streaming build on the
//!   same RMAT source. Sharded builds replay the source `S + 2` times,
//!   so this prices the replays bought by the `O(n + 2m/S)` peak.
//! * `shard/jp` — the shard-parallel JP level loop with its halo
//!   color-exchange barrier vs the monolithic level loop, same ADG
//!   ranks, at 2 and 4 shards.
//! * `shard/peel` — the shard-grouped ADG peel (`adg_with_shards`) vs
//!   the monolithic push peel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_core::jp::{jp_color_levels, jp_color_levels_sharded};
use pgc_graph::gen::{generate, generate_sharded_with_stats, GraphSpec, SpecSource};
use pgc_graph::sharded::{build_sharded, ShardOptions};
use pgc_graph::stream::build_compact;
use pgc_graph::GraphView as _;
use pgc_order::{adg, adg_with_shards, AdgOptions};
use std::hint::black_box;

const SPEC: GraphSpec = GraphSpec::Rmat {
    scale: 12,
    edge_factor: 8,
};
const SEED: u64 = 1;

fn shard_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard/build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let src = SpecSource::new(SPEC, SEED);
    group.bench_function("monolithic", |b| {
        b.iter(|| black_box(build_compact(&src).unwrap().m()))
    });
    for shards in [2usize, 4] {
        group.bench_function(BenchmarkId::new("resident", shards), |b| {
            let opts = ShardOptions::resident(shards);
            b.iter(|| black_box(build_sharded(&src, &opts).unwrap().m()))
        });
        group.bench_function(BenchmarkId::new("spill", shards), |b| {
            let dir = std::env::temp_dir().join(format!("pgc-bench-shard-{shards}"));
            let opts = ShardOptions::spilling(shards, &dir);
            b.iter(|| black_box(build_sharded(&src, &opts).unwrap().m()));
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

fn shard_jp(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard/jp");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mono = generate(&SPEC, SEED);
    let ord = adg(&mono, &AdgOptions::default());
    group.throughput(Throughput::Elements(mono.m() as u64));
    group.bench_function("monolithic", |b| {
        b.iter(|| black_box(jp_color_levels(&mono, &ord.rho).1))
    });
    for shards in [2usize, 4] {
        let (g, _) = generate_sharded_with_stats(&SPEC, SEED, &ShardOptions::resident(shards));
        let bounds = g.boundaries().to_vec();
        group.bench_function(BenchmarkId::new("halo-exchange", shards), |b| {
            b.iter(|| black_box(jp_color_levels_sharded(&g, &ord.rho, &bounds).1))
        });
    }
    group.finish();
}

fn shard_peel(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard/peel");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mono = generate(&SPEC, SEED);
    let opts = AdgOptions::default();
    group.bench_function("monolithic", |b| {
        b.iter(|| black_box(adg(&mono, &opts).rho[0]))
    });
    for shards in [2usize, 4] {
        let (g, _) = generate_sharded_with_stats(&SPEC, SEED, &ShardOptions::resident(shards));
        let bounds = g.boundaries().to_vec();
        group.bench_function(BenchmarkId::new("shard-grouped", shards), |b| {
            b.iter(|| black_box(adg_with_shards(&g, &opts, Some(&bounds)).rho[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, shard_build, shard_jp, shard_peel);
criterion_main!(benches);
