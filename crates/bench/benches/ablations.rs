//! §VI-J ablation bench: the ADG design choices — batch sorting on/off,
//! push vs pull updates, average vs median thresholds, integer-sort
//! algorithm, cached vs recomputed degree sums.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgc_bench::bench_graph_scale_free;
use pgc_order::adg::{adg, AdgOptions, ThresholdRule, UpdateStyle};
use pgc_primitives::sort::SortAlgo;
use std::hint::black_box;

fn adg_variants(c: &mut Criterion) {
    let g = bench_graph_scale_free();
    let variants: Vec<(&str, AdgOptions)> = vec![
        ("default(sortR+push+radix+cache)", AdgOptions::default()),
        (
            "no-batch-sort",
            AdgOptions {
                sort_batches: false,
                ..Default::default()
            },
        ),
        (
            "pull-update",
            AdgOptions {
                update: UpdateStyle::Pull,
                ..Default::default()
            },
        ),
        (
            "median(ADG-M)",
            AdgOptions {
                rule: ThresholdRule::Median,
                ..Default::default()
            },
        ),
        (
            "counting-sort",
            AdgOptions {
                sort_algo: SortAlgo::Counting,
                ..Default::default()
            },
        ),
        (
            "quicksort",
            AdgOptions {
                sort_algo: SortAlgo::Quick,
                ..Default::default()
            },
        ),
        (
            "no-cached-degree-sum",
            AdgOptions {
                cache_degree_sum: false,
                ..Default::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablations/adg");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, opts) in variants {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(adg(&g, &opts).stats.iterations))
        });
    }
    group.finish();
}

criterion_group!(benches, adg_variants);
criterion_main!(benches);
