//! Weighted-workload benchmarks (PR 5's weighted graph layer).
//!
//! Three groups:
//!
//! * `weighted/build` — streaming weighted construction (`f32` payload)
//!   against the unweighted build of the same seeded topology: the
//!   struct-of-arrays surcharge of carrying weights through the two-pass
//!   engine,
//! * `weighted/matching` — parallel greedy weighted matching
//!   (sort-by-weight + locally-dominant claim rounds),
//! * `weighted/densest` — weighted-degree peel + best suffix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_graph::gen::{generate_weighted, GraphSpec, SpecSource};
use pgc_graph::stream::{build_compact, build_weighted, build_weighted_with_stats};
use pgc_mining::{approx_weighted_densest_subgraph, greedy_weighted_matching};
use std::hint::black_box;

fn spec(scale: u32) -> GraphSpec {
    GraphSpec::Rmat {
        scale,
        edge_factor: 8,
    }
}

fn weighted_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted/build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for scale in [10u32, 12] {
        let src = SpecSource::new(spec(scale), 1);
        let raw = (1usize << scale) * 8;
        group.throughput(Throughput::Elements(raw as u64));
        group.bench_function(BenchmarkId::new("unweighted", scale), |b| {
            b.iter(|| black_box(build_compact(&src).unwrap().m()))
        });
        group.bench_function(BenchmarkId::new("f32-weights", scale), |b| {
            b.iter(|| black_box(build_weighted::<f32, _>(&src).unwrap().m()))
        });
    }
    group.finish();

    // Sanity off the hot path: the weighted streaming build must still
    // beat the (weighted) arc-list baseline it replaced.
    let (_, stats) = build_weighted_with_stats::<f32, _>(&SpecSource::new(spec(12), 1)).unwrap();
    assert!(stats.build_bytes_peak < stats.arc_list_baseline_bytes());
    assert_eq!(stats.weight_width, 4);
}

fn weighted_workloads(c: &mut Criterion) {
    let g = generate_weighted::<f32>(&spec(12), 1);

    let mut group = c.benchmark_group("weighted/matching");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("greedy-1/2-approx", |b| {
        b.iter(|| black_box(greedy_weighted_matching(&g).total_weight))
    });
    group.finish();

    let mut group = c.benchmark_group("weighted/densest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("wdeg-peel+suffix", |b| {
        b.iter(|| black_box(approx_weighted_densest_subgraph(&g, 0.1).density))
    });
    group.finish();
}

criterion_group!(benches, weighted_build, weighted_workloads);
criterion_main!(benches);
