//! Table III bench: every coloring algorithm end-to-end on one scale-free
//! and one social proxy (the full class-1/2/3 comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgc_bench::{bench_graph_scale_free, bench_graph_social};
use pgc_core::{run, Algorithm, Params};
use std::hint::black_box;

fn table3(c: &mut Criterion) {
    let params = Params::default();
    for (gname, g) in [
        ("rmat", bench_graph_scale_free()),
        ("ba-social", bench_graph_social()),
    ] {
        let mut group = c.benchmark_group(format!("table3/{gname}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(300));
        for algo in Algorithm::all() {
            group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
                b.iter(|| black_box(run(&g, algo, &params).num_colors))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, table3);
criterion_main!(benches);
