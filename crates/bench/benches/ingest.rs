//! Ingestion bench: streaming two-pass construction vs the buffered
//! arc-list front end.
//!
//! Both paths run the same two-pass engine; the difference measured here
//! is the source side — seeded regeneration ([`SpecSource`]) against a
//! fully buffered edge list ([`EdgeListBuilder`]) — i.e. the CPU price
//! paid for halving peak ingestion memory. A second group measures the
//! file-reader path end to end over in-memory bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_graph::gen::{GraphSpec, SpecSource};
use pgc_graph::io::{read_edge_list, write_edge_list};
use pgc_graph::stream::{build_compact, build_compact_with_stats, EdgeSource};
use pgc_graph::EdgeListBuilder;
use std::hint::black_box;

fn ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/rmat");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for scale in [10u32, 12] {
        let spec = GraphSpec::Rmat {
            scale,
            edge_factor: 8,
        };
        let src = SpecSource::new(spec.clone(), 1);
        let raw = src.edge_hint().expect("generator hints are exact");
        group.throughput(Throughput::Elements(raw as u64));

        group.bench_function(BenchmarkId::new("streaming", scale), |b| {
            b.iter(|| black_box(build_compact(&src).unwrap().m()))
        });

        // Buffered baseline: collect the raw pairs once up front, then
        // rebuild from the buffer per iteration (by reference through the
        // builder's EdgeSource impl — no per-iteration clone).
        let mut buffered = EdgeListBuilder::with_capacity(spec.n(), raw);
        src.replay(&mut |chunk| {
            for &(u, v) in chunk {
                buffered.add_edge(u, v);
            }
        })
        .unwrap();
        group.bench_function(BenchmarkId::new("buffered", scale), |b| {
            b.iter(|| black_box(build_compact(&buffered).unwrap().m()))
        });
    }
    group.finish();

    // Sanity off the hot path: the streaming build must beat the
    // arc-list memory baseline it replaced.
    let (_, stats) = build_compact_with_stats(&SpecSource::new(
        GraphSpec::Rmat {
            scale: 12,
            edge_factor: 8,
        },
        1,
    ))
    .unwrap();
    assert!(stats.build_bytes_peak < stats.arc_list_baseline_bytes());
}

fn ingest_reader(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/edge-list-text");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let g = pgc_graph::gen::generate(
        &GraphSpec::Rmat {
            scale: 11,
            edge_factor: 8,
        },
        1,
    );
    let mut text = Vec::new();
    write_edge_list(&g, &mut text).unwrap();
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse+build", |b| {
        b.iter(|| black_box(read_edge_list(&text[..]).unwrap().m()))
    });
    group.finish();
}

criterion_group!(benches, ingest, ingest_reader);
criterion_main!(benches);
