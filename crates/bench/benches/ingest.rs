//! Ingestion bench: streaming two-pass construction vs the buffered
//! arc-list front end.
//!
//! Both paths run the same two-pass engine; the difference measured here
//! is the source side — seeded regeneration ([`SpecSource`]) against a
//! fully buffered edge list ([`EdgeListBuilder`]) — i.e. the CPU price
//! paid for halving peak ingestion memory. A second group measures the
//! file-reader path end to end over in-memory bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_graph::gen::{GraphSpec, SpecSource};
use pgc_graph::io::{read_edge_list, write_edge_list};
use pgc_graph::stream::{build_compact, build_compact_with_stats, EdgeSource};
use pgc_graph::EdgeListBuilder;
use std::hint::black_box;

fn ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/rmat");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for scale in [10u32, 12] {
        let spec = GraphSpec::Rmat {
            scale,
            edge_factor: 8,
        };
        let src = SpecSource::new(spec.clone(), 1);
        let raw = EdgeSource::<()>::edge_hint(&src).expect("generator hints are exact");
        group.throughput(Throughput::Elements(raw as u64));

        group.bench_function(BenchmarkId::new("streaming", scale), |b| {
            b.iter(|| black_box(build_compact(&src).unwrap().m()))
        });

        // Buffered baseline: collect the raw pairs once up front, then
        // rebuild from the buffer per iteration (by reference through the
        // builder's EdgeSource impl — no per-iteration clone).
        let mut buffered = EdgeListBuilder::with_capacity(spec.n(), raw);
        src.replay(&mut |chunk, _: &[()]| {
            for &(u, v) in chunk {
                buffered.add_edge(u, v);
            }
        })
        .unwrap();
        group.bench_function(BenchmarkId::new("buffered", scale), |b| {
            b.iter(|| black_box(build_compact(&buffered).unwrap().m()))
        });
    }
    group.finish();

    // Sanity off the hot path: the streaming build must beat the
    // arc-list memory baseline it replaced.
    let (_, stats) = build_compact_with_stats(&SpecSource::new(
        GraphSpec::Rmat {
            scale: 12,
            edge_factor: 8,
        },
        1,
    ))
    .unwrap();
    assert!(stats.build_bytes_peak < stats.arc_list_baseline_bytes());
}

fn ingest_reader(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/edge-list-text");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let g = pgc_graph::gen::generate(
        &GraphSpec::Rmat {
            scale: 11,
            edge_factor: 8,
        },
        1,
    );
    let mut text = Vec::new();
    write_edge_list(&g, &mut text).unwrap();
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse+build", |b| {
        b.iter(|| black_box(read_edge_list(&text[..]).unwrap().m()))
    });

    // Baseline for the PR-5 byte-level fast-path parser: the retired
    // reader shape — `String` lines + `split_whitespace` + `str::parse`
    // — behind the identical streaming build, so the delta is parsing
    // alone. Run `cargo bench --bench ingest` and compare
    // `parse+build` (fast path) against `parse+build/str-baseline`.
    struct StrLineSource<'a>(&'a [u8]);

    impl EdgeSource for StrLineSource<'_> {
        fn num_vertices(&self) -> usize {
            0
        }

        fn replay(&self, emit: &mut pgc_graph::stream::ChunkFn<'_>) -> std::io::Result<()> {
            use std::io::BufRead;
            let mut sink = pgc_graph::EdgeSink::new(emit);
            for line in self.0.lines() {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                    continue;
                }
                let mut it = t.split_whitespace();
                let u: u32 = it.next().unwrap().parse().unwrap();
                let v: u32 = it.next().unwrap().parse().unwrap();
                sink.push(u, v);
            }
            Ok(())
        }
    }

    group.bench_function("parse+build/str-baseline", |b| {
        b.iter(|| black_box(build_compact(&StrLineSource(&text)).unwrap().m()))
    });
    group.finish();
}

criterion_group!(benches, ingest, ingest_reader);
criterion_main!(benches);
