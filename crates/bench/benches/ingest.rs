//! Ingestion bench: streaming two-pass construction vs the buffered
//! arc-list front end.
//!
//! Both paths run the same two-pass engine; the difference measured here
//! is the source side — seeded regeneration ([`SpecSource`]) against a
//! fully buffered edge list ([`EdgeListBuilder`]) — i.e. the CPU price
//! paid for halving peak ingestion memory. A second group measures the
//! file-reader path end to end over in-memory bytes, and a third pits
//! the binary snapshot loaders against the text parse on a ≥1M-edge
//! graph (with an in-bench ≥10× regression assertion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgc_graph::gen::{GraphSpec, SpecSource};
use pgc_graph::io::{read_edge_list, write_edge_list};
use pgc_graph::stream::{build_compact, build_compact_with_stats, EdgeSource};
use pgc_graph::{EdgeListBuilder, GraphView as _};
use std::hint::black_box;

fn ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/rmat");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for scale in [10u32, 12] {
        let spec = GraphSpec::Rmat {
            scale,
            edge_factor: 8,
        };
        let src = SpecSource::new(spec.clone(), 1);
        let raw = EdgeSource::<()>::edge_hint(&src).expect("generator hints are exact");
        group.throughput(Throughput::Elements(raw as u64));

        group.bench_function(BenchmarkId::new("streaming", scale), |b| {
            b.iter(|| black_box(build_compact(&src).unwrap().m()))
        });

        // Buffered baseline: collect the raw pairs once up front, then
        // rebuild from the buffer per iteration (by reference through the
        // builder's EdgeSource impl — no per-iteration clone).
        let mut buffered = EdgeListBuilder::with_capacity(spec.n(), raw);
        src.replay(&mut |chunk, _: &[()]| {
            for &(u, v) in chunk {
                buffered.add_edge(u, v);
            }
        })
        .unwrap();
        group.bench_function(BenchmarkId::new("buffered", scale), |b| {
            b.iter(|| black_box(build_compact(&buffered).unwrap().m()))
        });
    }
    group.finish();

    // Sanity off the hot path: the streaming build must beat the
    // arc-list memory baseline it replaced.
    let (_, stats) = build_compact_with_stats(&SpecSource::new(
        GraphSpec::Rmat {
            scale: 12,
            edge_factor: 8,
        },
        1,
    ))
    .unwrap();
    assert!(stats.build_bytes_peak < stats.arc_list_baseline_bytes());
}

fn ingest_reader(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/edge-list-text");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let g = pgc_graph::gen::generate(
        &GraphSpec::Rmat {
            scale: 11,
            edge_factor: 8,
        },
        1,
    );
    let mut text = Vec::new();
    write_edge_list(&g, &mut text).unwrap();
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse+build", |b| {
        b.iter(|| black_box(read_edge_list(&text[..]).unwrap().m()))
    });

    // Baseline for the PR-5 byte-level fast-path parser: the retired
    // reader shape — `String` lines + `split_whitespace` + `str::parse`
    // — behind the identical streaming build, so the delta is parsing
    // alone. Run `cargo bench --bench ingest` and compare
    // `parse+build` (fast path) against `parse+build/str-baseline`.
    struct StrLineSource<'a>(&'a [u8]);

    impl EdgeSource for StrLineSource<'_> {
        fn num_vertices(&self) -> usize {
            0
        }

        fn replay(&self, emit: &mut pgc_graph::stream::ChunkFn<'_>) -> std::io::Result<()> {
            use std::io::BufRead;
            let mut sink = pgc_graph::EdgeSink::new(emit);
            for line in self.0.lines() {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                    continue;
                }
                let mut it = t.split_whitespace();
                let u: u32 = it.next().unwrap().parse().unwrap();
                let v: u32 = it.next().unwrap().parse().unwrap();
                sink.push(u, v);
            }
            Ok(())
        }
    }

    group.bench_function("parse+build/str-baseline", |b| {
        b.iter(|| black_box(build_compact(&StrLineSource(&text)).unwrap().m()))
    });
    group.finish();
}

/// Binary snapshot load vs text parse on a ≥1M-edge graph — the raw-speed
/// claim of the snapshot format, pinned by a min-of-reps ≥10× assertion
/// (min over several runs, so scheduler noise only ever helps the slower
/// side).
fn ingest_snapshot(c: &mut Criterion) {
    let g = pgc_graph::gen::generate(
        &GraphSpec::Rmat {
            scale: 17,
            edge_factor: 16,
        },
        1,
    );
    assert!(
        g.m() >= 1_000_000,
        "snapshot bench wants a >=1M-edge graph, got m={}",
        g.m()
    );
    let mut text = Vec::new();
    write_edge_list(&g, &mut text).unwrap();
    let mut snap = Vec::new();
    pgc_graph::snapshot::write_snapshot_to(&g, &mut snap).unwrap();
    let path = std::env::temp_dir().join(format!(
        "pgc-bench-{}.{}",
        std::process::id(),
        pgc_graph::snapshot::SNAPSHOT_EXT
    ));
    std::fs::write(&path, &snap).unwrap();

    let mut group = c.benchmark_group("ingest/snapshot");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Bytes(snap.len() as u64));
    group.bench_function("text-parse+build", |b| {
        b.iter(|| black_box(read_edge_list(&text[..]).unwrap().m()))
    });
    group.bench_function("snapshot-load", |b| {
        b.iter(|| black_box(pgc_graph::snapshot::load_snapshot_bytes(&snap).unwrap().m()))
    });
    group.bench_function("snapshot-mmap-open", |b| {
        b.iter(|| {
            black_box(
                pgc_graph::snapshot::MappedSnapshot::<()>::open(&path)
                    .unwrap()
                    .num_arcs(),
            )
        })
    });
    group.finish();

    // Regression gate: snapshot load must stay >=10x faster than the text
    // parse it replaces.
    let min_secs = |f: &mut dyn FnMut()| -> f64 {
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t_text = min_secs(&mut || {
        black_box(read_edge_list(&text[..]).unwrap().m());
    });
    let t_snap = min_secs(&mut || {
        black_box(pgc_graph::snapshot::load_snapshot_bytes(&snap).unwrap().m());
    });
    let _ = std::fs::remove_file(&path);
    assert!(
        t_text >= 10.0 * t_snap,
        "snapshot load regressed: text parse {:.1} ms vs snapshot load {:.1} ms ({:.1}x < 10x)",
        t_text * 1e3,
        t_snap * 1e3,
        t_text / t_snap
    );
}

criterion_group!(benches, ingest, ingest_reader, ingest_snapshot);
criterion_main!(benches);
