//! Fig. 4 bench: cache-simulator replay throughput per algorithm (the
//! simulator is the experiment substrate here; the measured miss fractions
//! themselves come from `pgc fig4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgc_cachesim::simulate_algorithm;
use pgc_core::{Algorithm, Params};
use pgc_graph::gen::{generate, GraphSpec};
use std::hint::black_box;

fn fig4(c: &mut Criterion) {
    let params = Params::default();
    let g = generate(
        &GraphSpec::Rmat {
            scale: 11,
            edge_factor: 8,
        },
        2,
    );
    let mut group = c.benchmark_group("fig4/trace-replay");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for algo in [
        Algorithm::JpR,
        Algorithm::JpAdg,
        Algorithm::JpSl,
        Algorithm::Itr,
        Algorithm::DecAdgItr,
    ] {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter(|| black_box(simulate_algorithm(&g, algo, &params).miss_fraction))
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
