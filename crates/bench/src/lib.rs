//! Shared fixtures for the criterion benches.
//!
//! One bench target per paper table/figure (see DESIGN.md §6). Benchmarks
//! are sized so a full `cargo bench` completes in minutes on one core;
//! `pgc` (the harness binary) runs the same experiments at full scale.

use pgc_graph::gen::{generate, GraphSpec};
use pgc_graph::CompactCsr;

/// The scale-free workhorse graph (h-bai-like proxy) used across benches.
pub fn bench_graph_scale_free() -> CompactCsr {
    generate(
        &GraphSpec::Rmat {
            scale: 13,
            edge_factor: 8,
        },
        0xBE7C,
    )
}

/// A social-network-like proxy (s-pok).
pub fn bench_graph_social() -> CompactCsr {
    generate(
        &GraphSpec::BarabasiAlbert {
            n: 20_000,
            attach: 10,
        },
        0xBE7C,
    )
}

/// A mesh proxy (v-usa).
pub fn bench_graph_mesh() -> CompactCsr {
    generate(
        &GraphSpec::Grid2d {
            rows: 150,
            cols: 150,
        },
        0,
    )
}

/// The conflict-heavy proxy (s-gmc).
pub fn bench_graph_clustered() -> CompactCsr {
    generate(
        &GraphSpec::RingOfCliques {
            cliques: 300,
            clique_size: 24,
        },
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_generate() {
        assert!(bench_graph_scale_free().m() > 0);
        assert!(bench_graph_social().m() > 0);
        assert!(bench_graph_mesh().m() > 0);
        assert!(bench_graph_clustered().m() > 0);
    }
}
