//! Ordering explorer: how much does the vertex order matter?
//!
//! Reproduces the paper's core narrative interactively: for one graph, run
//! every ordering through the same JP engine and print quality, the
//! measured DAG depth (longest priority path — the parallelism bottleneck),
//! and the degeneracy-approximation each ordering achieves.
//!
//! ```sh
//! cargo run --release --example ordering_explorer [-- n attach]
//! ```

use parallel_graph_coloring as pgc;
use pgc::color::jp::{dag_longest_path, jp_color};
use pgc::color::verify;
use pgc::graph::degeneracy::degeneracy;
use pgc::graph::gen::{generate, GraphSpec};
use pgc::order::{compute, max_back_degree, AdgOptions, OrderingKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let attach: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let g = generate(&GraphSpec::BarabasiAlbert { n, attach }, 1);
    let d = degeneracy(&g).degeneracy;
    println!(
        "Barabasi-Albert n={n} attach={attach}:  m={} Delta={} d={d}\n",
        g.m(),
        g.max_degree()
    );
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "order", "colors", "DAG depth", "back-degree", "back/d", "iters"
    );

    for kind in [
        OrderingKind::FirstFit,
        OrderingKind::Random,
        OrderingKind::LargestFirst,
        OrderingKind::LargestLogFirst,
        OrderingKind::SmallestLogLast,
        OrderingKind::ApproxSmallestLast,
        OrderingKind::SmallestLast,
        OrderingKind::Adg(AdgOptions::default()),
        OrderingKind::Adg(AdgOptions::median()),
    ] {
        let ord = compute(&g, &kind, 7);
        let colors = jp_color(&g, &ord.rho);
        verify::assert_proper(&g, &colors);
        let back = max_back_degree(&g, &ord);
        println!(
            "{:<8} {:>8} {:>10} {:>12} {:>12.2} {:>10}",
            kind.name(),
            verify::num_colors(&colors),
            dag_longest_path(&g, &ord.rho),
            back,
            back as f64 / d.max(1) as f64,
            ord.stats.iterations
        );
    }
    println!(
        "\nReading guide: SL has the best back-degree (= d) but Θ(n) \
         sequential iterations; ADG provably stays within 2(1+ε)·d using \
         O(log n) iterations — that tradeoff is the paper."
    );
}
