//! Register allocation by interference-graph coloring (Chaitin [21], one of
//! the paper's motivating applications).
//!
//! Virtual registers whose live ranges overlap *interfere* and need
//! distinct physical registers; coloring the interference graph with at
//! most K colors allocates K physical registers, and any vertex forced
//! beyond K must be spilled. We synthesize straight-line live ranges,
//! color, and report the spill count for several algorithms — quality
//! (fewer colors) means fewer spills.
//!
//! ```sh
//! cargo run --release --example register_allocation
//! ```

use parallel_graph_coloring as pgc;
use pgc::color::{run, verify, Algorithm, Params};
use pgc::graph::EdgeListBuilder;
use pgc::primitives::SplitMix64;

/// Random live ranges over a linear instruction stream; interference =
/// interval overlap. Interval graphs are chordal, so optimal coloring
/// equals the max overlap depth — a useful ground truth.
fn interference_graph(
    ranges: usize,
    program_len: u32,
    max_span: u32,
    seed: u64,
) -> (pgc::graph::CompactCsr, u32) {
    let mut rng = SplitMix64::new(seed);
    let ivals: Vec<(u32, u32)> = (0..ranges)
        .map(|_| {
            let start = rng.below(program_len - 1);
            let len = 1 + rng.below(max_span);
            (start, (start + len).min(program_len))
        })
        .collect();
    // Sweep to find interferences and the clique number (max live depth).
    let mut events: Vec<(u32, bool, u32)> = Vec::with_capacity(2 * ranges);
    for (i, &(s, e)) in ivals.iter().enumerate() {
        events.push((s, true, i as u32));
        events.push((e, false, i as u32));
    }
    // Ends before starts at equal points (half-open intervals).
    events.sort_unstable_by_key(|&(p, is_start, _)| (p, is_start));
    let mut live: Vec<u32> = Vec::new();
    let mut b = EdgeListBuilder::new(ranges);
    let mut depth_max = 0u32;
    for (_, is_start, id) in events {
        if is_start {
            for &other in &live {
                b.add_edge(id, other);
            }
            live.push(id);
            depth_max = depth_max.max(live.len() as u32);
        } else {
            live.retain(|&x| x != id);
        }
    }
    (b.build(), depth_max)
}

fn main() {
    let (g, optimal) = interference_graph(8_000, 40_000, 60, 3);
    println!(
        "interference graph: {} live ranges, {} interferences, optimal colors = {optimal}",
        g.n(),
        g.m()
    );

    let machine_registers = optimal + 2; // a machine with barely enough
    let params = Params::default();
    for algo in [
        Algorithm::GreedySd,
        Algorithm::JpR,
        Algorithm::JpAdg,
        Algorithm::DecAdgItr,
    ] {
        let r = run(&g, algo, &params);
        verify::assert_proper(&g, &r.colors);
        let spills = r.colors.iter().filter(|&&c| c >= machine_registers).count();
        let ratio = r.num_colors as f64 / optimal as f64;
        println!(
            "{:<12} {:>3} colors ({ratio:.2}x optimal)  spills with K={machine_registers}: {spills}",
            algo.name(),
            r.num_colors,
        );
        assert!(
            r.num_colors >= optimal,
            "cannot beat the clique lower bound"
        );
    }
}
