//! Quickstart: color a scale-free graph with JP-ADG and inspect the
//! guarantees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parallel_graph_coloring as pgc;
use pgc::color::{run, verify, Algorithm, Params};
use pgc::graph::degeneracy::degeneracy;
use pgc::graph::gen::{generate, GraphSpec};

fn main() {
    // 1. Build a graph. Generators cover the paper's dataset families; real
    //    edge lists load via pgc::graph::io::read_edge_list.
    let spec = GraphSpec::BarabasiAlbert {
        n: 100_000,
        attach: 8,
    };
    let g = generate(&spec, 42);
    println!(
        "graph: n={} m={} max_deg={} avg_deg={:.1}",
        g.n(),
        g.m(),
        g.max_degree(),
        g.avg_degree()
    );

    // 2. The degeneracy d drives every quality bound. For scale-free
    //    graphs d is far below the max degree — that gap is why JP-ADG's
    //    2(1+eps)d+1 guarantee beats the classic Delta+1.
    let d = degeneracy(&g).degeneracy;
    println!("degeneracy d = {d} (Delta = {})", g.max_degree());

    // 3. Color with JP-ADG (paper default eps = 0.01).
    let params = Params::default();
    let run_adg = run(&g, Algorithm::JpAdg, &params);
    verify::assert_proper(&g, &run_adg.colors);
    let bound = verify::bounds::jp_adg(d, params.epsilon);
    println!(
        "JP-ADG:  {} colors (guarantee {}), order {:.1?} + color {:.1?}",
        run_adg.num_colors,
        bound,
        run_adg.ordering_time(),
        run_adg.coloring_time()
    );

    // 4. Compare with the classic parallel baseline JP-R.
    let run_r = run(&g, Algorithm::JpR, &params);
    println!(
        "JP-R:    {} colors (guarantee {}), total {:.1?}",
        run_r.num_colors,
        g.max_degree() + 1,
        run_r.total_time()
    );

    // 5. And with the speculative contribution DEC-ADG-ITR.
    let run_dec = run(&g, Algorithm::DecAdgItr, &params);
    println!(
        "DEC-ADG-ITR: {} colors (guarantee {}), {} conflicts repaired",
        run_dec.num_colors,
        bound,
        run_dec.conflicts()
    );

    assert!(run_adg.num_colors <= run_r.num_colors);
    println!(
        "\nJP-ADG used {:.0}% of JP-R's colors.",
        100.0 * run_adg.num_colors as f64 / run_r.num_colors as f64
    );
}
