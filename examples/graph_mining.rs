//! ADG beyond coloring — the paper's closing claim ("our ADG scheme is of
//! separate interest") in action on one graph:
//!
//! 1. approximate densest subgraph (community core detection),
//! 2. approximate coreness (influence ranking),
//! 3. maximal clique enumeration over the ADG order.
//!
//! ```sh
//! cargo run --release --example graph_mining
//! ```

use parallel_graph_coloring as pgc;
use pgc::graph::degeneracy::degeneracy;
use pgc::graph::gen::{generate, GraphSpec};
use pgc::mining::{
    approx_coreness, approx_densest_subgraph, count_maximal_cliques, max_clique_size,
};

fn main() {
    // A social-network-like graph with a planted dense community: BA body
    // plus one clique over a subset of vertices.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let body = generate(
        &GraphSpec::BarabasiAlbert {
            n: 20_000,
            attach: 6,
        },
        5,
    );
    edges.extend(body.edges());
    for u in 100..140u32 {
        for v in (u + 1)..140 {
            edges.push((u, v));
        }
    }
    let g = pgc::graph::builder::from_edges(20_000, &edges);
    let info = degeneracy(&g);
    println!(
        "graph: n={} m={} Delta={} degeneracy={}",
        g.n(),
        g.m(),
        g.max_degree(),
        info.degeneracy
    );

    // 1. Densest subgraph: should recover the planted 40-clique
    //    (density 19.5) rather than the BA bulk (density ~6).
    let dense = approx_densest_subgraph(&g, 0.1);
    println!(
        "\ndensest subgraph: |S|={} density={:.2} (ADG level {})",
        dense.vertices.len(),
        dense.density,
        dense.level
    );
    let planted_found = (100..140u32).filter(|v| dense.vertices.contains(v)).count();
    println!("planted 40-clique members recovered: {planted_found}/40");

    // 2. Coreness estimates vs exact.
    let est = approx_coreness(&g, 0.1);
    let exact = &info.coreness;
    let worst = (0..g.n())
        .map(|v| est[v] as f64 / exact[v].max(1) as f64)
        .fold(0.0f64, f64::max);
    println!(
        "\ncoreness estimate: max over-approximation {:.2}x (guarantee: never below exact)",
        worst
    );
    let top = (0..g.n() as u32).max_by_key(|&v| est[v as usize]).unwrap();
    println!(
        "highest estimated coreness: vertex {top} (est {}, exact {})",
        est[top as usize], exact[top as usize]
    );

    // 3. Maximal cliques via the degeneracy-ordered Bron–Kerbosch.
    let t0 = std::time::Instant::now();
    let cliques = count_maximal_cliques(&g);
    let omega = max_clique_size(&g);
    println!(
        "\nmaximal cliques: {cliques} (largest = {omega} vertices) in {:?}",
        t0.elapsed()
    );
    assert!(omega >= 40, "planted clique must be found");
}
