//! Sparse-Jacobian compression via graph coloring — the paper's first
//! motivating application ([1], [3]: "what color is your Jacobian?").
//!
//! Estimating a sparse Jacobian J by finite differences costs one function
//! evaluation per *group of structurally orthogonal columns* (columns that
//! share no row). Two columns conflict iff some row has non-zeros in both —
//! exactly an edge in the column-intersection graph, so a proper coloring
//! of that graph is a valid grouping, and fewer colors = fewer function
//! evaluations.
//!
//! ```sh
//! cargo run --release --example sparse_jacobian
//! ```

use parallel_graph_coloring as pgc;
use pgc::color::{run, verify, Algorithm, Params};
use pgc::graph::EdgeListBuilder;
use pgc::primitives::SplitMix64;

/// A random sparse matrix pattern: `rows × cols`, about `nnz_per_row`
/// non-zeros per row (plus a diagonal band so every column is used).
struct SparsePattern {
    cols: usize,
    /// Row-major list of column indices per row.
    rows: Vec<Vec<u32>>,
}

fn random_pattern(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> SparsePattern {
    let mut rng = SplitMix64::new(seed);
    let mut r = Vec::with_capacity(rows);
    for i in 0..rows {
        let mut cs: Vec<u32> = (0..nnz_per_row).map(|_| rng.below(cols as u32)).collect();
        cs.push((i % cols) as u32); // banded diagonal keeps it realistic
        cs.sort_unstable();
        cs.dedup();
        r.push(cs);
    }
    SparsePattern { cols, rows: r }
}

/// Column-intersection graph: vertices = columns, edge {a,b} iff some row
/// contains both.
fn column_intersection_graph(p: &SparsePattern) -> pgc::graph::CompactCsr {
    let mut b = EdgeListBuilder::new(p.cols);
    for row in &p.rows {
        for i in 0..row.len() {
            for j in (i + 1)..row.len() {
                b.add_edge(row[i], row[j]);
            }
        }
    }
    b.build()
}

fn main() {
    let pattern = random_pattern(20_000, 5_000, 4, 7);
    let g = column_intersection_graph(&pattern);
    println!(
        "column-intersection graph: n={} m={} Delta={}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let params = Params::default();
    // One function evaluation per color: compare the naive column-at-a-time
    // cost against colored grouping with three algorithms.
    println!("naive finite differences: {} evaluations", g.n());
    for algo in [Algorithm::JpR, Algorithm::JpAdg, Algorithm::DecAdgItr] {
        let r = run(&g, algo, &params);
        verify::assert_proper(&g, &r.colors);
        println!(
            "{:<12} {:>4} evaluations ({:.1}x compression), {:?}",
            algo.name(),
            r.num_colors,
            g.n() as f64 / r.num_colors as f64,
            r.total_time()
        );
    }

    // Demonstrate that the grouping is usable: rebuild the groups and check
    // structural orthogonality directly on the matrix pattern.
    let r = run(&g, Algorithm::JpAdg, &params);
    let k = r.num_colors as usize;
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (col, &c) in r.colors.iter().enumerate() {
        groups[c as usize].push(col as u32);
    }
    for row in &pattern.rows {
        let mut seen = vec![false; k];
        for &c in row {
            let g = r.colors[c as usize] as usize;
            assert!(!seen[g], "two columns of one group share row — invalid!");
            seen[g] = true;
        }
    }
    println!(
        "verified: all {} groups structurally orthogonal across {} rows",
        k,
        pattern.rows.len()
    );
}
