//! Conflict-free task scheduling ("chromatic scheduling", paper refs
//! [8]–[11]): tasks that share a resource cannot run in the same round; a
//! proper coloring of the conflict graph is a legal schedule, and the
//! number of colors is the makespan in rounds.
//!
//! We model a data-graph computation: updates (tasks) touch a few shared
//! cells; two updates conflict iff they touch a common cell. Fewer colors
//! = fewer synchronized rounds, so the ADG-based algorithms' superior
//! quality translates directly into shorter schedules.
//!
//! ```sh
//! cargo run --release --example task_scheduling
//! ```

use parallel_graph_coloring as pgc;
use pgc::color::{run, verify, Algorithm, Params};
use pgc::graph::EdgeListBuilder;
use pgc::primitives::SplitMix64;

/// `tasks` tasks touching `touches` cells each out of `cells`.
fn build_conflict_graph(
    tasks: usize,
    cells: usize,
    touches: usize,
    seed: u64,
) -> (pgc::graph::CompactCsr, Vec<Vec<u32>>) {
    let mut rng = SplitMix64::new(seed);
    let mut touched: Vec<Vec<u32>> = Vec::with_capacity(tasks);
    let mut cell_users: Vec<Vec<u32>> = vec![Vec::new(); cells];
    for t in 0..tasks {
        let mut cs: Vec<u32> = (0..touches).map(|_| rng.below(cells as u32)).collect();
        cs.sort_unstable();
        cs.dedup();
        for &c in &cs {
            cell_users[c as usize].push(t as u32);
        }
        touched.push(cs);
    }
    let mut b = EdgeListBuilder::new(tasks);
    for users in &cell_users {
        for i in 0..users.len() {
            for j in (i + 1)..users.len() {
                b.add_edge(users[i], users[j]);
            }
        }
    }
    (b.build(), touched)
}

fn main() {
    let (g, touched) = build_conflict_graph(30_000, 60_000, 3, 99);
    println!(
        "task conflict graph: {} tasks, {} conflicts, max conflicts/task = {}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let params = Params::default();
    let mut best: Option<(Algorithm, u32)> = None;
    for algo in [
        Algorithm::JpLlf,
        Algorithm::JpAdg,
        Algorithm::DecAdgItr,
        Algorithm::Itr,
    ] {
        let r = run(&g, algo, &params);
        verify::assert_proper(&g, &r.colors);
        println!(
            "{:<12} schedule length {:>3} rounds  (computed in {:?})",
            algo.name(),
            r.num_colors,
            r.total_time()
        );
        if best.is_none_or(|(_, k)| r.num_colors < k) {
            best = Some((algo, r.num_colors));
        }
    }
    let (algo, rounds) = best.unwrap();
    println!("\nbest schedule: {} with {rounds} rounds", algo.name());

    // Execute the schedule: replay rounds and assert no two tasks in the
    // same round touch the same cell.
    let r = run(&g, algo, &params);
    let mut cell_round = vec![u32::MAX; 60_000];
    for round in 0..rounds {
        for (task, &c) in r.colors.iter().enumerate() {
            if c == round {
                for &cell in &touched[task] {
                    assert_ne!(
                        cell_round[cell as usize], round,
                        "write-write race in round {round}"
                    );
                    cell_round[cell as usize] = round;
                }
            }
        }
    }
    println!("replayed {rounds} rounds: no resource conflicts ✓");
}
